#pragma once

#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interface_generator.h"
#include "engine/backend.h"
#include "runtime/interactive.h"
#include "runtime/thread_pool.h"

namespace ifgen {

/// \brief One generation job: a query log plus the generator configuration.
struct JobSpec {
  std::vector<std::string> sqls;
  GeneratorOptions options;
};

/// \brief A concurrent interface-generation service: many query logs in,
/// many interfaces out (the serving posture of PI2, which wraps this
/// algorithm into an end-to-end interface service).
///
/// Jobs run on a work-stealing thread pool; identical jobs — same canonical
/// query log (parsed, unparsed, and sorted, so formatting and order don't
/// matter) and same options — are answered from an LRU result cache.
/// Each job's search can itself be parallel (JobSpec.options.parallel);
/// that nests cleanly because TaskGroup::Wait helps run pool tasks instead
/// of blocking a worker.
class GenerationService {
 public:
  struct Options {
    /// Worker threads executing jobs (min 1).
    size_t num_threads = 4;
    /// Completed results kept in the LRU cache; 0 disables caching.
    size_t cache_capacity = 64;
  };

  GenerationService();  ///< default Options
  explicit GenerationService(Options opts);
  ~GenerationService();

  using JobFuture = std::future<Result<GeneratedInterface>>;

  /// Submits one job; the future resolves when the interface is generated
  /// (immediately on a cache hit).
  JobFuture Submit(JobSpec spec);

  /// Submits a batch; futures are in input order. Jobs execute concurrently
  /// up to the pool width.
  std::vector<JobFuture> SubmitBatch(std::vector<JobSpec> specs);

  /// Cache key: hash of the *sorted canonical* SQL (each query parsed and
  /// unparsed, the list sorted) combined with a hash of every
  /// result-affecting option. Unparsable logs fall back to the raw strings
  /// (still deterministic; such jobs fail identically anyway).
  /// GeneratorOptions::backend is deliberately excluded: the execution
  /// backend never changes the generated interface.
  static uint64_t JobKey(const JobSpec& spec);

  /// Returns the execution backend for (db, kind), constructing it on first
  /// use and caching it for the service's lifetime so plan caches stay warm
  /// across jobs that serve interfaces over the same store. `db` must
  /// outlive the service.
  Result<std::shared_ptr<ExecutionBackend>> BackendFor(const Database* db,
                                                       BackendKind kind);
  size_t backends_created() const;

  /// Opens a per-user interactive runtime over a generated interface: the
  /// serving-side session object. Each runtime owns its own widget state,
  /// result maintenance, and change feed, but executes on the *shared*
  /// (db, kind) backend from BackendFor, so all sessions over one store
  /// share compiled plans. `db` must outlive the returned runtime.
  Result<std::shared_ptr<InteractiveRuntime>> OpenSession(
      const GeneratedInterface& iface, const CostConstants& constants,
      const Database* db, BackendKind kind,
      InteractiveRuntime::Options opts = {});
  size_t sessions_opened() const;

  size_t jobs_submitted() const;
  size_t jobs_executed() const;
  size_t cache_hits() const;
  size_t num_threads() const { return pool_.num_threads(); }

 private:
  std::shared_ptr<const GeneratedInterface> CacheLookup(uint64_t key);
  void CacheStore(uint64_t key, std::shared_ptr<const GeneratedInterface> value);

  size_t cache_capacity_;

  mutable std::mutex mu_;
  /// LRU: most recent at the front; the map points into the list.
  std::list<std::pair<uint64_t, std::shared_ptr<const GeneratedInterface>>> lru_;
  std::unordered_map<
      uint64_t,
      std::list<std::pair<uint64_t, std::shared_ptr<const GeneratedInterface>>>::iterator>
      index_;
  size_t jobs_submitted_ = 0;
  size_t jobs_executed_ = 0;
  size_t cache_hits_ = 0;
  size_t sessions_opened_ = 0;

  /// (database, kind) -> shared backend instance.
  std::map<std::pair<const Database*, BackendKind>,
           std::shared_ptr<ExecutionBackend>>
      backends_;

  /// Declared last on purpose: ~ThreadPool joins the workers, and in-flight
  /// jobs touch the mutex/cache members above — those must still be alive
  /// while the pool drains during destruction.
  ThreadPool pool_;
};

}  // namespace ifgen
