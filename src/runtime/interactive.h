#pragma once

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/session.h"
#include "engine/backend.h"
#include "engine/delta_exec.h"

namespace ifgen {

/// \brief The incremental interactive runtime: an InterfaceSession plus
/// delta result maintenance and a change feed.
///
/// Every widget change w(q, u) -> q' goes through one pipeline: materialize
/// the new query, parameterize it (engine/backend.h), classify the
/// transition against the previously *executed* state
/// (engine/delta_exec.h), and maintain the previous result instead of
/// re-executing when a sound incremental path exists:
///
///  - `noop`        — identical (shape, params): the previous result stands.
///  - memo hit      — any class: a per-(shape, params) LRU of past results
///                    answers revisited states (toggling back) outright.
///  - `tighten`     — delta-capable plans re-filter only the retained
///                    selection vector (columnar backend).
///  - `loosen`      — prior selection survives wholesale; only its
///                    complement is evaluated, then merged in row order.
///  - `limit_only`  — the retained pre-TOP/LIMIT table is re-truncated.
///  - `rebind` / `shape_change` — full execution through the backend's plan
///                    cache (rebind re-uses the compiled plan; shape change
///                    may compile).
///
/// Incremental results are bit-identical to full re-execution — enforced
/// differentially by tests/interactive_test.cc on randomized walks across
/// all backends. Backends whose plans are not delta-capable (reference,
/// SQLite) still get the noop/memo paths; everything else falls back to
/// full execution. All public methods are serialized by an internal mutex
/// so a future HTTP front-end can poll the change feed concurrently with
/// interactions.
/// \brief Tuning knobs of an InteractiveRuntime (namespace-scope so it can
/// serve as an in-class default argument).
struct InteractiveOptions {
  /// Memoized results retained per runtime (LRU); 0 disables the memo.
  size_t result_cache_capacity = 64;
  /// Ablation flag: false forces full re-execution on every step (the
  /// differential baseline and the bench comparison arm).
  bool enable_delta = true;
};

class InteractiveRuntime {
 public:
  using Options = InteractiveOptions;

  /// Builds a runtime positioned at the interface's first query, with that
  /// query already executed (current_result() is valid on success).
  /// `backend` is shared (GenerationService::BackendFor hands out one per
  /// database × kind) and must outlive the runtime.
  static Result<std::unique_ptr<InteractiveRuntime>> Create(
      const GeneratedInterface& iface, const CostConstants& constants,
      std::shared_ptr<ExecutionBackend> backend, Options opts = {});

  /// \brief What one interaction step did: transition class, how the result
  /// was maintained, and the row-level delta against the previous result.
  struct StepReport {
    TransitionClass transition = TransitionClass::kShapeChange;
    bool incremental = false;  ///< served without a full pipeline execution
    bool from_cache = false;   ///< memoized result cache hit
    size_t widgets_changed = 0;
    double interaction_cost = 0.0;
    double navigation_cost = 0.0;
    size_t rows = 0;          ///< rows in the new current result
    size_t rows_added = 0;    ///< rows in new but not old (multiset)
    size_t rows_removed = 0;  ///< rows in old but not new (multiset)
    size_t rows_updated = 0;  ///< group-key matches with changed values
    double total_cost() const { return interaction_cost + navigation_cost; }
  };

  // ------------------------------------------------------------------
  // Interactions (each executes/maintains the result and bumps version).

  /// Moves the widgets to express `query` (min-change transition), then
  /// maintains the result.
  Result<StepReport> LoadQuery(const Ast& query);

  /// Widget manipulation by choice id — the w(q, u) -> q' interface.
  Result<StepReport> SetAnyChoice(int choice_id, int option_index);
  Result<StepReport> SetOptPresent(int choice_id, bool present);
  Result<StepReport> SetMultiCount(int choice_id, size_t count);

  // ------------------------------------------------------------------
  // State.

  /// Copy of the current result (thread-safe snapshot).
  Result<Table> CurrentResult() const;
  Result<std::string> CurrentSql() const;
  Result<Ast> CurrentQuery() const;

  /// The wrapped session. NOT synchronized with concurrent interactions —
  /// single-threaded inspection only (tests, benches).
  const InterfaceSession& session() const { return *session_; }

  /// Monotone result version; bumped on every step that changes which
  /// result is current (including steps whose result is value-identical).
  uint64_t version() const;

  /// Blocks until version() > `last_seen` or `timeout_ms` elapses, and
  /// returns the version at wake. The feed transport's long-poll primitive
  /// (mirrors GenerationService::WaitJob): a consumer parks here instead of
  /// polling on a sleep loop, and every successful step wakes all waiters.
  /// `timeout_ms` <= 0 is an immediate version read.
  uint64_t WaitForVersionExceeding(uint64_t last_seen, int64_t timeout_ms) const;

  // ------------------------------------------------------------------
  // Change feed.

  using SubscriberId = uint64_t;

  /// \brief One row-level change. Applying a batch to the subscriber's last
  /// table — remove one row equal to `row` per kRemove, append `row` per
  /// kAdd, and per kUpdate remove one row equal to `old_row` then append
  /// `row` — reproduces the current result as a multiset (row order is not
  /// part of the contract; tests compare canonically sorted tables).
  struct RowChange {
    enum class Kind : uint8_t { kAdd, kRemove, kUpdate };
    Kind kind = Kind::kAdd;
    std::vector<Value> row;      ///< kAdd/kUpdate: the new row; kRemove: the removed row
    std::vector<Value> old_row;  ///< kUpdate only: the replaced row
  };

  /// \brief Everything a Poll delivers: the diff from the subscriber's last
  /// delivered version to the current one, plus the report of the step that
  /// produced the current version.
  struct ChangeBatch {
    uint64_t from_version = 0;
    uint64_t to_version = 0;
    std::vector<RowChange> changes;
    StepReport last_step;
  };

  /// Registers a subscriber positioned at the current version (the first
  /// Poll only reports changes made after Subscribe). The overload with
  /// `initial_snapshot` atomically copies the current result under the same
  /// lock — use it when interactions run concurrently, otherwise a step
  /// between Subscribe and CurrentResult desynchronizes the caller's base
  /// table from the first Poll's diff.
  SubscriberId Subscribe();
  SubscriberId Subscribe(Table* initial_snapshot);
  Status Unsubscribe(SubscriberId id);

  /// Returns the changes since the subscriber's last Poll (empty `changes`
  /// with from_version == to_version when nothing happened) and advances
  /// the subscriber to the current version.
  Result<ChangeBatch> Poll(SubscriberId id);

  // ------------------------------------------------------------------
  // Introspection.

  struct Counters {
    size_t steps = 0;        ///< successful interaction steps
    size_t noops = 0;        ///< identical (shape, params): zero work
    size_t cache_hits = 0;   ///< memoized result served
    size_t delta_execs = 0;  ///< tighten/loosen selection-delta executions
    size_t retruncates = 0;  ///< limit-only: retained table re-truncated
    size_t full_execs = 0;   ///< full pipeline executions
    size_t fallbacks = 0;    ///< full executions forced while delta enabled
  };
  Counters counters() const;

 private:
  /// One retained execution, shared immutably between the runtime's prev
  /// state, the memo, and subscriber snapshots. `served` aliases `full`
  /// whenever the limit does not actually cut rows, so the common no-limit
  /// case never copies the result table.
  struct CachedResult {
    std::shared_ptr<const Table> full;    ///< pre-TOP/LIMIT result
    std::shared_ptr<const Table> served;  ///< post-TOP/LIMIT (== full when uncut)
    int64_t limit = -1;
    /// Post-WHERE base-row selection; null when the plan was not
    /// delta-capable (no retained state to resume from).
    std::shared_ptr<const std::vector<uint32_t>> selection;
    bool delta_state() const { return selection != nullptr; }
  };
  using CachedResultPtr = std::shared_ptr<const CachedResult>;

  InteractiveRuntime(InterfaceSession session,
                     std::shared_ptr<ExecutionBackend> backend, Options opts);

  /// The shared tail of every interaction: (re)executes or maintains the
  /// result for the session's current query. Requires mu_ held.
  ///
  /// On error (e.g. the new widget state orders by a column the projection
  /// dropped) the result side of the runtime — CurrentResult, version, the
  /// feed, and the retained delta state — stays at the last *executed*
  /// step, while the session's widget state (CurrentSql) has already
  /// advanced; the next successful step re-synchronizes them.
  Result<StepReport> StepLocked(size_t widgets_changed, double interaction_cost,
                                double navigation_cost);
  /// Cost attribution of flipping one widget (mirrors cost/transition.cc).
  void PriceWidgetChange(int choice_id, double* interaction_cost,
                         double* navigation_cost) const;

  static CachedResultPtr MakeCached(DeltaResult dr);
  /// The single owner of the served-aliases-full invariant: `served` copies
  /// and truncates only when `limit` actually cuts rows.
  static CachedResultPtr MakeCachedShared(
      std::shared_ptr<const Table> full, int64_t limit,
      std::shared_ptr<const std::vector<uint32_t>> selection);
  Result<CachedResultPtr> ExecuteFull(const ParameterizedQuery& pq);
  CachedResultPtr MemoLookup(const std::string& key);
  void MemoStore(const std::string& key, CachedResultPtr value);

  std::unique_ptr<InterfaceSession> session_;
  std::shared_ptr<ExecutionBackend> backend_;
  Options opts_;
  CostConstants constants_;

  mutable std::mutex mu_;
  /// Signaled (all waiters) on every version_ bump.
  mutable std::condition_variable version_cv_;

  // Previously *executed* state (survives failed steps unchanged).
  std::string prev_key_;  ///< canonical shape SQL; empty = nothing executed
  std::vector<Value> prev_params_;
  ShapeDeltaInfo prev_info_;
  std::vector<size_t> prev_group_key_cols_;  ///< update-detection key columns
  CachedResultPtr prev_result_;

  // Memoized results, LRU: (shape key + param fingerprint) -> result.
  std::list<std::pair<std::string, CachedResultPtr>> lru_;
  std::unordered_map<
      std::string, std::list<std::pair<std::string, CachedResultPtr>>::iterator>
      memo_;

  // Change feed. Snapshots share the immutable result tables — a
  // subscriber costs one shared_ptr, not a table copy.
  struct Subscriber {
    uint64_t version = 0;
    std::shared_ptr<const Table> snapshot;
  };
  std::map<SubscriberId, Subscriber> subscribers_;
  SubscriberId next_subscriber_ = 1;
  uint64_t version_ = 0;
  StepReport last_report_;

  Counters counters_;
};

/// Computes the row-level diff between two tables: multiset removes/adds,
/// with add/remove pairs sharing equal values in `key_cols` reported as a
/// single kUpdate (group-by keys are unique per result, so the pairing is
/// well defined). Pass empty `key_cols` for pure add/remove diffs. Exposed
/// for tests and the bench.
std::vector<InteractiveRuntime::RowChange> DiffTables(
    const Table& before, const Table& after, const std::vector<size_t>& key_cols);

}  // namespace ifgen
