#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ifgen {

namespace tt_internal {
// Function-local statics in inline functions are shared across TUs, so every
// table in the process feeds the same registry counters.
inline obs::Counter& TranspositionHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_tt_transposition_hits_total",
      "TranspositionTable visits that found the state already present");
  return *c;
}
inline obs::Counter& TtCostHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_tt_cost_hits_total", "TranspositionTable cached-cost lookups that hit");
  return *c;
}
inline obs::Counter& TtPeerCostHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_tt_peer_cost_hits_total",
      "TranspositionTable cost lookups served by a peer-seeded entry");
  return *c;
}
}  // namespace tt_internal

/// \brief A sharded, striped-lock hash map keyed by pre-mixed 64-bit hashes
/// — the concurrency machinery shared by the transposition table and the
/// delta-cost caches (cost/delta.h).
///
/// Keys are assumed already well-mixed (difftree canonical/structural
/// hashes), so the shard index just takes the low bits; each shard has its
/// own mutex, keeping contention negligible for realistic thread counts.
/// Values are copied out on lookup and never mutated outside a shard lock,
/// so readers and writers on different keys never block each other beyond
/// their shard.
///
/// No eviction: searches are bounded (payload caps, deadlines), and the
/// per-entry values are small, so the maps live for one search / one
/// evaluator lifetime. Counters are the caller's job — semantics of what a
/// "hit" means differ per use (see TranspositionTable / DeltaCostCache).
template <typename Value>
class ShardedMap {
 public:
  /// `num_shards` is rounded up to a power of two (min 1).
  explicit ShardedMap(size_t num_shards = 16) {
    size_t n = 1;
    while (n < num_shards) n <<= 1;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
    shard_mask_ = n - 1;
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  /// Copy of the value stored under `key`, if any.
  std::optional<Value> Lookup(uint64_t key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts `value` if `key` is absent (first writer wins — concurrent
  /// computations of one key are interchangeable in every current use).
  /// Returns true when this call inserted.
  bool Insert(uint64_t key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.try_emplace(key, std::move(value)).second;
  }

  /// Runs `fn(value, inserted)` under the shard lock, default-constructing
  /// the value when absent; returns fn's result. `fn` must be cheap — it
  /// holds the shard lock.
  template <typename Fn>
  auto Mutate(uint64_t key, Fn&& fn) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key);
    return fn(it->second, inserted);
  }

  /// Runs `fn(key, value)` for every entry, one shard lock at a time.
  /// Entries inserted into not-yet-visited shards during the walk may or may
  /// not be seen — callers use this for best-effort snapshots (TT export).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [key, value] : shard->map) fn(key, value);
    }
  }

  /// Total entries across shards (O(num_shards) locks).
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Value> map;
  };

  Shard& ShardFor(uint64_t key) { return *shards_[key & shard_mask_]; }
  const Shard& ShardFor(uint64_t key) const { return *shards_[key & shard_mask_]; }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
};

/// \brief A sharded transposition table over canonical difftree hashes
/// (`DiffTree::CanonicalHash()`), built on ShardedMap.
///
/// Replaces the per-searcher `unordered_set` of visited states: one table
/// is shared by every tree of a parallel MCTS ensemble, so a state expanded
/// by one thread is recognized as a transposition by all others, and its
/// sampled cost is shared instead of re-evaluated.
///
/// Entries accumulate MCTS statistics (visits, total reward) in addition to
/// the cached cost; root-parallel ensembles merge per-tree results through
/// these accumulators (visit-weighted reward).
class TranspositionTable {
 public:
  struct Entry {
    bool has_cost = false;
    double cost = 0.0;
    uint64_t visits = 0;
    double total_reward = 0.0;
    /// Cost came from a sibling worker (SeedPeerCost), not a local sample.
    /// Lookups that hit such entries count as peer hits, and exports skip
    /// them so gossip never echoes a peer's entries back at the cluster.
    bool peered = false;
  };

  /// `num_shards` is rounded up to a power of two (min 1).
  explicit TranspositionTable(size_t num_shards = 16) : map_(num_shards) {}

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  /// Marks `key` visited. Returns true when this call inserted it (first
  /// visit), false when it was already present (a transposition).
  bool Visit(uint64_t key) {
    bool inserted = map_.Mutate(key, [](Entry&, bool ins) { return ins; });
    if (!inserted) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      tt_internal::TranspositionHitsMetric().Inc();
    }
    return inserted;
  }

  /// Returns the cached cost for `key`, if any thread stored one.
  std::optional<double> LookupCost(uint64_t key) const {
    std::optional<Entry> e = map_.Lookup(key);
    if (!e.has_value() || !e->has_cost) return std::nullopt;
    cost_hits_.fetch_add(1, std::memory_order_relaxed);
    tt_internal::TtCostHitsMetric().Inc();
    if (e->peered) {
      peer_cost_hits_.fetch_add(1, std::memory_order_relaxed);
      tt_internal::TtPeerCostHitsMetric().Inc();
    }
    return e->cost;
  }

  /// Stores the sampled cost for `key` (first writer wins; costs for one
  /// canonical state are interchangeable samples, so there is no need to
  /// overwrite).
  void StoreCost(uint64_t key, double cost) {
    map_.Mutate(key, [cost](Entry& e, bool) {
      if (!e.has_cost) {
        e.has_cost = true;
        e.cost = cost;
      }
      return 0;
    });
  }

  /// Pre-seeds `key` with a cost discovered by a sibling worker. First
  /// writer wins, matching StoreCost: a locally sampled cost that landed
  /// first stays. Only sound when costs are pure functions of the state
  /// (EvalOptions::state_keyed_sampling with matching seed and options) —
  /// then a seeded entry changes how much work a search does, never which
  /// values it sees. `visits` is carried for export hotness ranking only;
  /// MCTS statistics stay local so reward accumulators are untouched.
  void SeedPeerCost(uint64_t key, double cost, uint64_t visits) {
    if (!std::isfinite(cost)) return;  // JSON transport cannot carry ±inf
    map_.Mutate(key, [cost, visits](Entry& e, bool inserted) {
      if (!e.has_cost) {
        e.has_cost = true;
        e.cost = cost;
        e.peered = true;
        if (inserted) e.visits = 0;  // hotness comes from local use, not peers
        (void)visits;
      }
      return 0;
    });
  }

  /// Snapshot of up to `limit` locally discovered costs, hottest (most
  /// visited) first — the batch a worker gossips to its siblings. Peered
  /// and non-finite entries are skipped (no echo, no un-encodable values).
  struct ExportedCost {
    uint64_t key = 0;
    double cost = 0.0;
    uint64_t visits = 0;
  };
  std::vector<ExportedCost> ExportHotCosts(size_t limit) const {
    std::vector<ExportedCost> out;
    map_.ForEach([&out](uint64_t key, const Entry& e) {
      if (!e.has_cost || e.peered || !std::isfinite(e.cost)) return;
      out.push_back({key, e.cost, e.visits});
    });
    std::stable_sort(out.begin(), out.end(),
                     [](const ExportedCost& a, const ExportedCost& b) {
                       if (a.visits != b.visits) return a.visits > b.visits;
                       return a.key < b.key;  // deterministic tie-break
                     });
    if (out.size() > limit) out.resize(limit);
    return out;
  }

  /// Accumulates one backpropagated reward into `key`'s statistics.
  void AccumulateReward(uint64_t key, double reward) {
    map_.Mutate(key, [reward](Entry& e, bool) {
      ++e.visits;
      e.total_reward += reward;
      return 0;
    });
  }

  /// Snapshot of `key`'s entry (zeroed Entry when absent).
  Entry Get(uint64_t key) const { return map_.Lookup(key).value_or(Entry{}); }

  /// Total entries across shards (O(num_shards)).
  size_t size() const { return map_.size(); }

  size_t num_shards() const { return map_.num_shards(); }

  /// Visit() calls that found the key already present.
  size_t transposition_hits() const { return hits_.load(std::memory_order_relaxed); }

  /// LookupCost() calls that returned a value.
  size_t cost_hits() const { return cost_hits_.load(std::memory_order_relaxed); }

  /// LookupCost() hits served by a peer-seeded entry — the work a sibling
  /// worker's discoveries saved this search.
  size_t peer_cost_hits() const {
    return peer_cost_hits_.load(std::memory_order_relaxed);
  }

 private:
  ShardedMap<Entry> map_;
  std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> cost_hits_{0};  ///< bumped from const LookupCost
  mutable std::atomic<size_t> peer_cost_hits_{0};
};

}  // namespace ifgen
