#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace ifgen {

/// \brief A sharded, striped-lock transposition table over canonical
/// difftree hashes (`DiffTree::CanonicalHash()`).
///
/// Replaces the per-searcher `unordered_set` of visited states: one table
/// is shared by every tree of a parallel MCTS ensemble, so a state expanded
/// by one thread is recognized as a transposition by all others, and its
/// sampled cost is shared instead of re-evaluated.
///
/// Keys are pre-mixed 64-bit hashes, so the shard index just takes the low
/// bits; each shard has its own mutex (striped locking), which keeps
/// contention negligible for any realistic thread count.
///
/// Entries accumulate MCTS statistics (visits, total reward) in addition to
/// the cached cost; root-parallel ensembles merge per-tree results through
/// these accumulators (visit-weighted reward).
class TranspositionTable {
 public:
  struct Entry {
    bool has_cost = false;
    double cost = 0.0;
    uint64_t visits = 0;
    double total_reward = 0.0;
  };

  /// `num_shards` is rounded up to a power of two (min 1).
  explicit TranspositionTable(size_t num_shards = 16);
  ~TranspositionTable();  // out-of-line: Shard is defined in tt.cc

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  /// Marks `key` visited. Returns true when this call inserted it (first
  /// visit), false when it was already present (a transposition).
  bool Visit(uint64_t key);

  /// Returns the cached cost for `key`, if any thread stored one.
  std::optional<double> LookupCost(uint64_t key) const;

  /// Stores the sampled cost for `key` (first writer wins; costs for one
  /// canonical state are interchangeable samples, so there is no need to
  /// overwrite).
  void StoreCost(uint64_t key, double cost);

  /// Accumulates one backpropagated reward into `key`'s statistics.
  void AccumulateReward(uint64_t key, double reward);

  /// Snapshot of `key`'s entry (zeroed Entry when absent).
  Entry Get(uint64_t key) const;

  /// Total entries across shards (O(num_shards)).
  size_t size() const;

  size_t num_shards() const { return shards_.size(); }

  /// Visit() calls that found the key already present.
  size_t transposition_hits() const { return hits_.load(std::memory_order_relaxed); }

  /// LookupCost() calls that returned a value.
  size_t cost_hits() const { return cost_hits_.load(std::memory_order_relaxed); }

 private:
  struct Shard;

  Shard& ShardFor(uint64_t key);
  const Shard& ShardFor(uint64_t key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
  std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> cost_hits_{0};  ///< bumped from const LookupCost
};

}  // namespace ifgen
