#include "runtime/service.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "util/hash.h"

namespace ifgen {

namespace {

/// Registry handles for the job/session protocol (resolved once).
struct ServiceMetrics {
  obs::Counter* jobs_submitted;
  obs::Counter* jobs_rejected;
  obs::Counter* jobs_executed;
  obs::Counter* jobs_cache_hits;
  obs::Counter* jobs_evicted;
  obs::Counter* sessions_opened;
  obs::Counter* cache_probes;
  obs::Counter* cache_probe_hits;
  obs::Counter* tt_peer_ingested;
  obs::Gauge* jobs_pending;
  obs::Histogram* queued_us;
  obs::Histogram* run_us;
  static const ServiceMetrics& Get() {
    static const ServiceMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      ServiceMetrics s;
      s.jobs_submitted =
          reg.GetCounter("ifgen_jobs_submitted_total", "Generation jobs submitted");
      s.jobs_rejected = reg.GetCounter("ifgen_jobs_admission_rejected_total",
                                       "Jobs rejected by admission control");
      s.jobs_executed = reg.GetCounter("ifgen_jobs_executed_total",
                                       "Generation jobs executed by a worker");
      s.jobs_cache_hits = reg.GetCounter("ifgen_jobs_cache_hits_total",
                                         "Jobs answered from the result cache");
      s.jobs_evicted = reg.GetCounter("ifgen_jobs_history_evicted_total",
                                      "Terminal job records evicted from history");
      s.sessions_opened = reg.GetCounter("ifgen_sessions_opened_total",
                                         "Interactive sessions opened");
      s.cache_probes = reg.GetCounter("ifgen_cache_probes_total",
                                      "Cluster cache.probe requests answered");
      s.cache_probe_hits =
          reg.GetCounter("ifgen_cache_probe_hits_total",
                         "Cluster cache.probe requests that found a cached result");
      s.tt_peer_ingested =
          reg.GetCounter("ifgen_tt_peer_ingested_total",
                         "Transposition entries accepted from sibling workers");
      s.jobs_pending =
          reg.GetGauge("ifgen_jobs_pending", "Jobs admitted but not yet terminal");
      // 64us..~8.6s in x2 steps: generation runs for milliseconds to seconds.
      obs::HistogramOptions opts;
      opts.first_bound = 64.0;
      opts.growth = 2.0;
      opts.num_buckets = 18;
      s.queued_us = reg.GetHistogram("ifgen_job_queued_duration_us",
                                     "Time jobs spent waiting for a worker "
                                     "(microseconds)",
                                     opts);
      s.run_us = reg.GetHistogram("ifgen_job_run_duration_us",
                                  "Job execution time (microseconds)", opts);
      return s;
    }();
    return m;
  }
};

uint64_t HashU64(uint64_t h, uint64_t v) { return HashCombine(h, v); }

uint64_t HashF64(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  return HashCombine(h, bits);
}

/// Fingerprint of every option that can change a job's output. Hashed
/// field-by-field (structs have padding, so raw-byte hashes would be
/// nondeterministic) — except CostConstants, whose members are uniformly
/// 8-byte doubles/size_t and therefore padding-free.
uint64_t OptionsFingerprint(const GeneratorOptions& o) {
  uint64_t h = 0x1f65ULL;
  h = HashU64(h, static_cast<uint64_t>(o.screen.width));
  h = HashU64(h, static_cast<uint64_t>(o.screen.height));
  h = HashU64(h, static_cast<uint64_t>(o.algorithm));

  const SearchOptions& s = o.search;
  h = HashU64(h, static_cast<uint64_t>(s.time_budget_ms));
  h = HashU64(h, s.max_iterations);
  h = HashU64(h, s.seed);
  h = HashF64(h, s.exploration_c);
  h = HashU64(h, s.rollout_len);
  h = HashF64(h, s.rollout_stop_prob);
  h = HashU64(h, s.expand_all_children ? 1 : 0);
  h = HashU64(h, s.max_expansions_per_iteration);
  h = HashU64(h, s.max_search_tree_payload);
  h = HashF64(h, s.rollout_forward_bias);
  h = HashF64(h, s.rollout_saturate_prob);
  h = HashF64(h, s.rollout_eval_prob);
  h = HashU64(h, s.beam_width);
  h = HashU64(h, s.exhaustive_max_depth);
  h = HashU64(h, s.exhaustive_max_states);

  // Prior knobs steer PUCT selection and widening order, so any of them can
  // change which interface the search lands on.
  const PriorOptions& pr = s.priors;
  h = HashU64(h, pr.use_priors ? 1 : 0);
  h = HashU64(h, pr.progressive_widening ? 1 : 0);
  h = HashF64(h, pr.puct_c);
  h = HashF64(h, pr.widen_c);
  h = HashF64(h, pr.widen_alpha);
  h = HashF64(h, pr.freq_weight);
  h = HashF64(h, pr.cooc_weight);
  h = HashF64(h, pr.min_prior);
  for (const auto& [name, weight] : pr.learned_weights) {
    h = HashBytes(name, h);
    h = HashF64(h, weight);
  }

  // Anytime time control changes where the search stops, hence the result.
  // (The stop/progress pointers are runtime wiring and deliberately NOT
  // hashed: attaching a sink never changes the output.)
  const TimeControlOptions& t = s.time_control;
  h = HashU64(h, static_cast<uint64_t>(t.deadline_ms));
  h = HashF64(h, t.target_cost);
  h = HashF64(h, t.plateau_fraction);
  h = HashU64(h, static_cast<uint64_t>(t.plateau_min_ms));
  h = HashU64(h, t.check_interval);
  h = HashF64(h, t.final_phase_fraction);

  const ParallelOptions& p = o.parallel;
  h = HashU64(h, p.num_threads);
  h = HashU64(h, static_cast<uint64_t>(p.mode));
  h = HashU64(h, p.tt_shards);
  h = HashU64(h, p.leaf_rollouts);

  const RuleSetOptions& r = o.rules;
  h = HashU64(h, r.enable_noop_wrap ? 1 : 0);
  h = HashU64(h, static_cast<uint64_t>(r.all2any_max_alts));
  h = HashU64(h, r.max_tree_nodes);

  h = HashBytes(std::string_view(reinterpret_cast<const char*>(&o.constants),
                                 sizeof o.constants),
                h);

  // The backend never changes the generated widgets, but it IS part of the
  // served contract once requests select it (sessions execute on it), so
  // requests differing only in backend must not alias one cache entry.
  h = HashU64(h, static_cast<uint64_t>(o.backend));
  h = HashU64(h, o.k_assignments);
  h = HashU64(h, o.parse_limit);
  h = HashF64(h, o.enumeration_cap);
  // cache_peering switches cost sampling to the state-keyed mode, which
  // changes which assignments the k random draws produce — two requests
  // differing only in this flag must not alias one cache entry.
  h = HashU64(h, o.cache_peering ? 1 : 0);
  // experience switches sampling mode exactly like cache_peering (the store
  // bridge itself is runtime wiring and stays out of every key).
  h = HashU64(h, o.experience ? 1 : 0);
  return h;
}

/// Sorted canonical forms of a query log (each parsed and unparsed, raw
/// string fallback for unparsable queries) — the value identity of the SQLs,
/// shared by JobKey and TtStoreKey.
std::vector<std::string> CanonicalSqls(const std::vector<std::string>& sqls) {
  std::vector<std::string> canonical;
  canonical.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    auto parsed = ParseQuery(sql);
    if (parsed.ok()) {
      auto unparsed = Unparse(*parsed);
      canonical.push_back(unparsed.ok() ? *unparsed : sql);
    } else {
      canonical.push_back(sql);
    }
  }
  std::sort(canonical.begin(), canonical.end());
  return canonical;
}

int64_t MsBetween(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

}  // namespace

std::string_view JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

uint64_t GenerationService::JobKey(const JobSpec& spec) {
  uint64_t h = OptionsFingerprint(spec.options);
  for (const std::string& sql : CanonicalSqls(spec.sqls)) {
    h = HashCombine(h, HashBytes(sql));
  }
  return h;
}

uint64_t GenerationService::TtStoreKey(const JobSpec& spec) {
  const GeneratorOptions& o = spec.options;
  // Everything that flows into EvalOptions (MakeEvalOptions) plus the
  // sampling seed: states hash identically across jobs, so as long as these
  // agree, a canonical state's sampled cost is the same number in both jobs
  // and entries are interchangeable. Budgets, deadlines, algorithm, and
  // parallelism change which states get visited — not what they cost — so
  // they are deliberately absent.
  uint64_t h = 0x77a5ULL;
  h = HashU64(h, static_cast<uint64_t>(o.screen.width));
  h = HashU64(h, static_cast<uint64_t>(o.screen.height));
  h = HashBytes(std::string_view(reinterpret_cast<const char*>(&o.constants),
                                 sizeof o.constants),
                h);
  h = HashU64(h, o.k_assignments);
  h = HashU64(h, o.parse_limit);
  h = HashF64(h, o.enumeration_cap);
  h = HashU64(h, o.delta_cost_eval ? 1 : 0);
  h = HashU64(h, o.cache_peering ? 1 : 0);
  h = HashU64(h, o.experience ? 1 : 0);
  h = HashU64(h, o.search.seed);
  for (const std::string& sql : CanonicalSqls(spec.sqls)) {
    h = HashCombine(h, HashBytes(sql));
  }
  return h;
}

Result<std::shared_ptr<ExecutionBackend>> GenerationService::BackendFor(
    const Database* db, BackendKind kind) {
  if (db == nullptr) return Status::Invalid("BackendFor: null database");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = backends_.find({db, kind});
    if (it != backends_.end()) return it->second;
  }
  // Construct outside the lock (SQLite ingestion can be slow); on a race
  // the first-inserted instance wins so plan caches stay shared.
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<ExecutionBackend> fresh,
                         CreateBackend(kind, db));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      backends_.emplace(std::make_pair(db, kind),
                        std::shared_ptr<ExecutionBackend>(std::move(fresh)));
  return it->second;
}

size_t GenerationService::backends_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_.size();
}

std::vector<GenerationService::BackendStatEntry> GenerationService::backend_stats()
    const {
  std::vector<BackendStatEntry> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(backends_.size());
  for (const auto& [key, backend] : backends_) {
    out.push_back({key.first, key.second, backend->stats()});
  }
  return out;
}

Result<std::shared_ptr<InteractiveRuntime>> GenerationService::OpenSession(
    const GeneratedInterface& iface, const CostConstants& constants,
    const Database* db, BackendKind kind, InteractiveRuntime::Options opts) {
  IFGEN_ASSIGN_OR_RETURN(std::shared_ptr<ExecutionBackend> backend,
                         BackendFor(db, kind));
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<InteractiveRuntime> runtime,
                         InteractiveRuntime::Create(iface, constants,
                                                    std::move(backend), opts));
  std::lock_guard<std::mutex> lock(mu_);
  ++sessions_opened_;
  ServiceMetrics::Get().sessions_opened->Inc();
  return std::shared_ptr<InteractiveRuntime>(std::move(runtime));
}

size_t GenerationService::sessions_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_opened_;
}

GenerationService::GenerationService() : GenerationService(Options()) {}

GenerationService::GenerationService(Options opts)
    : cache_capacity_(opts.cache_capacity),
      max_pending_jobs_(opts.max_pending_jobs),
      job_history_capacity_(std::max<size_t>(1, opts.job_history_capacity)),
      tt_peer_store_capacity_(opts.tt_peer_store_capacity),
      tt_peer_entries_per_store_(opts.tt_peer_entries_per_store),
      experience_(std::move(opts.experience)),
      experience_seed_limit_(opts.experience_seed_limit),
      shared_delta_store_capacity_(opts.shared_delta_store_capacity),
      pool_(std::max<size_t>(1, opts.num_threads)) {}

GenerationService::~GenerationService() = default;

std::shared_ptr<const GeneratedInterface> GenerationService::CacheLookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  ++cache_hits_;
  ServiceMetrics::Get().jobs_cache_hits->Inc();
  return it->second->second;
}

bool GenerationService::CachePeek(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_probes_;
  ServiceMetrics::Get().cache_probes->Inc();
  const bool hit = index_.find(key) != index_.end();
  if (hit) {
    ++cache_probe_hits_;
    ServiceMetrics::Get().cache_probe_hits->Inc();
  }
  return hit;
}

size_t GenerationService::TtIngest(uint64_t store_key,
                                   const std::vector<TtSeedEntry>& entries,
                                   bool local_origin) {
  if (tt_peer_store_capacity_ == 0 || tt_peer_entries_per_store_ == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tt_peers_.find(store_key);
  if (it == tt_peers_.end()) {
    if (entries.empty()) return 0;  // don't spend a store slot on nothing
    while (tt_peers_.size() >= tt_peer_store_capacity_ &&
           !tt_peer_order_.empty()) {
      tt_peers_.erase(tt_peer_order_.front());
      tt_peer_order_.pop_front();
    }
    it = tt_peers_.emplace(store_key, TtPeerStore{}).first;
    tt_peer_order_.push_back(store_key);
  }
  TtPeerStore& store = it->second;
  size_t inserted = 0;
  for (const TtSeedEntry& e : entries) {
    if (store.entries.size() >= tt_peer_entries_per_store_) break;
    auto [slot, fresh] = store.entries.try_emplace(e.canonical);
    if (!fresh) continue;  // first writer wins, matching the table semantics
    slot->second.entry = e;
    slot->second.local = local_origin;
    ++inserted;
  }
  if (!local_origin && inserted > 0) {
    tt_peer_ingested_ += inserted;
    ServiceMetrics::Get().tt_peer_ingested->Add(inserted);
  }
  return inserted;
}

std::vector<GenerationService::TtExportBatch> GenerationService::TtExportLocal(
    size_t max_entries_per_store) const {
  std::vector<TtExportBatch> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [store_key, store] : tt_peers_) {
    TtExportBatch batch;
    batch.store_key = store_key;
    for (const auto& [canonical, pe] : store.entries) {
      if (pe.local) batch.entries.push_back(pe.entry);
    }
    if (batch.entries.empty()) continue;
    // Hottest first, deterministic ties, bounded batch.
    std::stable_sort(batch.entries.begin(), batch.entries.end(),
                     [](const TtSeedEntry& a, const TtSeedEntry& b) {
                       if (a.visits != b.visits) return a.visits > b.visits;
                       return a.canonical < b.canonical;
                     });
    if (batch.entries.size() > max_entries_per_store) {
      batch.entries.resize(max_entries_per_store);
    }
    out.push_back(std::move(batch));
  }
  return out;
}

size_t GenerationService::tt_peer_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [key, store] : tt_peers_) total += store.entries.size();
  return total;
}

void GenerationService::CacheStore(uint64_t key,
                                   std::shared_ptr<const GeneratedInterface> value) {
  if (cache_capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // someone else finished the same job first
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > cache_capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Tracked job protocol.

GenerationService::JobInfo GenerationService::SnapshotLocked(
    JobId id, const JobRecord& rec) const {
  JobInfo info;
  info.id = id;
  info.state = rec.state;
  info.cache_hit = rec.cache_hit;
  const auto now = Clock::now();
  const auto queue_end = rec.state == JobState::kQueued ? now : rec.started;
  info.queued_ms = MsBetween(rec.submitted, queue_end);
  if (rec.state == JobState::kRunning) {
    info.run_ms = MsBetween(rec.started, now);
  } else if (rec.state != JobState::kQueued) {
    // Terminal. Queued-phase cancels have started == finished, i.e. 0.
    info.run_ms = rec.cache_hit ? 0 : MsBetween(rec.started, rec.finished);
  }
  info.result = rec.result;
  info.error = rec.error;
  info.trace = rec.trace;
  return info;
}

std::function<void(Result<GeneratedInterface>)> GenerationService::FinishLocked(
    JobId id, JobRecord* rec, JobState state,
    std::shared_ptr<const GeneratedInterface> result, Status error) {
  rec->state = state;
  rec->result = std::move(result);
  rec->error = std::move(error);
  rec->finished = Clock::now();
  if (rec->started == Clock::time_point()) rec->started = rec->finished;
  // Terminal => the progress stream is complete; wake its long-pollers.
  if (rec->progress != nullptr) rec->progress->Close();
  finished_order_.push_back(id);
  while (finished_order_.size() > job_history_capacity_) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
    ServiceMetrics::Get().jobs_evicted->Inc();
  }
  auto cb = std::move(rec->on_done);
  rec->on_done = nullptr;
  jobs_cv_.notify_all();
  return cb;
}

Result<GenerationService::JobId> GenerationService::SubmitJobWithCallback(
    JobSpec spec, std::function<void(Result<GeneratedInterface>)> on_done) {
  const uint64_t key = JobKey(spec);
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_submitted_;
    ServiceMetrics::Get().jobs_submitted->Inc();
    if (max_pending_jobs_ != 0 && jobs_pending_ >= max_pending_jobs_) {
      ServiceMetrics::Get().jobs_rejected->Inc();
      return Status::ResourceExhausted(
          "generation queue full: " + std::to_string(jobs_pending_) +
          " jobs pending (limit " + std::to_string(max_pending_jobs_) + ")");
    }
    id = next_job_id_++;
    JobRecord& rec = jobs_[id];
    rec.submitted = Clock::now();
    rec.on_done = std::move(on_done);
    rec.progress = std::make_shared<ProgressSink>();
    rec.stop = std::make_shared<StopHandle>();
    ++jobs_pending_;
    ServiceMetrics::Get().jobs_pending->Set(static_cast<double>(jobs_pending_));
  }

  if (auto cached = CacheLookup(key)) {
    std::function<void(Result<GeneratedInterface>)> cb;
    bool finished_here = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      // Re-check under the lock: CancelJob may have raced in between (job
      // ids are sequential, so a concurrent cancel of this id is possible)
      // and already finished the record + adjusted jobs_pending_.
      if (it != jobs_.end() && it->second.state == JobState::kQueued) {
        it->second.cache_hit = true;
        --jobs_pending_;
        ServiceMetrics::Get().jobs_pending->Set(static_cast<double>(jobs_pending_));
        cb = FinishLocked(id, &it->second, JobState::kDone, cached, Status::OK());
        finished_here = true;
      }
    }
    if (finished_here && cb) cb(*cached);  // copy out of the shared cache entry
    return id;
  }

  pool_.Submit([this, id, key, spec = std::move(spec)]() mutable {
    std::shared_ptr<ProgressSink> progress;
    std::shared_ptr<StopHandle> stop;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.state != JobState::kQueued) {
        return;  // cancelled while queued (or evicted)
      }
      it->second.state = JobState::kRunning;
      it->second.started = Clock::now();
      progress = it->second.progress;
      stop = it->second.stop;
      ServiceMetrics::Get().queued_us->Observe(static_cast<double>(
          MsBetween(it->second.submitted, it->second.started) * 1000));
    }
    // Live wiring: best-so-far improvements stream into the job's sink, and
    // CancelJob can now abort the running search through the stop handle.
    // Wired AFTER JobKey was computed, so cache keys stay value-only.
    spec.options.search.progress = progress;
    spec.options.search.stop = stop;
    // Transposition peering: warm-start the search from the cost-identity
    // peer store and harvest its discoveries afterwards. Runtime wiring like
    // progress/stop — with cache_peering on, seeded entries change only the
    // work done, never the values produced, so this stays outside every key.
    std::shared_ptr<TtBridge> tt_bridge;
    uint64_t tt_store_key = 0;
    if (spec.options.cache_peering) {
      tt_store_key = TtStoreKey(spec);
      tt_bridge = std::make_shared<TtBridge>();
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tt_peers_.find(tt_store_key);
        if (it != tt_peers_.end()) {
          tt_bridge->seed.reserve(it->second.entries.size());
          for (const auto& [canonical, pe] : it->second.entries) {
            tt_bridge->seed.push_back(pe.entry);
          }
        }
      }
      spec.options.search.tt_bridge = tt_bridge;
    }
    // Persistent experience: seed the search with the store's records for
    // this cost identity (root-action virtual visits + transposition costs)
    // and merge the run's discoveries back afterwards. Same runtime-wiring
    // contract as the TT bridge: with `experience` on, state-keyed sampling
    // guarantees seeding changes work done, never values, so the bridge
    // stays outside every cache key.
    std::shared_ptr<ExperienceBridge> exp_bridge;
    uint64_t exp_store_key = 0;
    if (spec.options.experience && experience_ != nullptr) {
      exp_store_key = TtStoreKey(spec);
      exp_bridge = std::make_shared<ExperienceBridge>();
      const std::vector<learn::ExperienceRecord> snap =
          experience_->Snapshot(exp_store_key, experience_seed_limit_);
      exp_bridge->seed.reserve(snap.size());
      for (const learn::ExperienceRecord& rec : snap) {
        exp_bridge->seed.push_back({rec.canonical, rec.best_cost, rec.visits});
      }
      if (!exp_bridge->seed.empty()) {
        learn::learn_internal::SeededMetric().Add(exp_bridge->seed.size());
        std::lock_guard<std::mutex> lock(mu_);
        learn_seeded_ += exp_bridge->seed.size();
      }
      spec.options.search.experience = exp_bridge;
      // Same-identity experience jobs also share one delta-cost cache, so a
      // warm start skips subtree/plan recomputes too (bit-safe: delta terms
      // are pure functions of their keys; see cost/delta.h).
      if (spec.options.delta_cost_eval && shared_delta_store_capacity_ > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = delta_stores_.find(exp_store_key);
        if (it == delta_stores_.end()) {
          while (delta_stores_.size() >= shared_delta_store_capacity_ &&
                 !delta_store_order_.empty()) {
            delta_stores_.erase(delta_store_order_.front());
            delta_store_order_.pop_front();
          }
          it = delta_stores_
                   .emplace(exp_store_key,
                            std::make_shared<DeltaCostCache>(/*enabled=*/true))
                   .first;
          delta_store_order_.push_back(exp_store_key);
        }
        spec.options.shared_delta_cache = it->second;
      }
    }
    // With tracing on, every span the generation emits on this thread is
    // also captured into a job-private recorder, served later through
    // JobInfo::trace (GET /v1/jobs/{id}/trace).
    std::shared_ptr<obs::TraceRecorder> job_trace;
    if (obs::TracingEnabled()) {
      job_trace = std::make_shared<obs::TraceRecorder>();
    }
    const Clock::time_point run_start = Clock::now();
    Result<GeneratedInterface> result = [&] {
      obs::ScopedTraceSink sink(job_trace.get());
      obs::TraceSpan span("service.job", "service");
      return GenerateInterface(spec.sqls, spec.options);
    }();
    ServiceMetrics::Get().run_us->Observe(
        static_cast<double>(MsBetween(run_start, Clock::now()) * 1000));
    if (tt_bridge != nullptr) {
      TtIngest(tt_store_key, tt_bridge->exported, /*local_origin=*/true);
      std::lock_guard<std::mutex> lock(mu_);
      tt_peer_hits_ += tt_bridge->peer_hits;
    }
    if (exp_bridge != nullptr) {
      // Harvest: every hot state the run discovered, plus one record for the
      // root itself carrying the preferred action (the training signal the
      // prior fitter and future warm starts consume).
      const uint64_t epoch = experience_->epoch();
      size_t recorded = 0;
      for (const TtSeedEntry& e : exp_bridge->exported) {
        experience_->Record({exp_store_key, e.canonical, 0, e.cost, e.visits,
                             epoch});
        ++recorded;
      }
      if (!exp_bridge->root_actions.empty() &&
          exp_bridge->root_canonical != 0) {
        const RootActionStat& best = exp_bridge->root_actions.front();
        double root_cost = std::numeric_limits<double>::infinity();
        if (result.ok()) root_cost = result->cost.total();
        experience_->Record({exp_store_key, exp_bridge->root_canonical,
                             best.canonical, root_cost,
                             std::max<uint64_t>(1, best.visits), epoch});
        ++recorded;
      }
      std::lock_guard<std::mutex> lock(mu_);
      learn_recorded_ += recorded;
    }
    // An abort via CancelJob leaves the stop handle latched with kCancelled;
    // the generation still returned its best-so-far partial interface, which
    // the cancelled record keeps — but must never enter the result cache.
    const bool cancelled = stop->reason() == StopReason::kCancelled;
    std::shared_ptr<const GeneratedInterface> shared;
    if (result.ok()) {
      shared = std::make_shared<const GeneratedInterface>(*result);
      if (!cancelled) CacheStore(key, shared);
    }
    std::function<void(Result<GeneratedInterface>)> cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++jobs_executed_;
      --jobs_pending_;
      ServiceMetrics::Get().jobs_executed->Inc();
      ServiceMetrics::Get().jobs_pending->Set(static_cast<double>(jobs_pending_));
      auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        it->second.trace = job_trace;
        JobState final_state = result.ok() ? JobState::kDone : JobState::kFailed;
        Status final_error = result.ok() ? Status::OK() : result.status();
        if (cancelled) {
          final_state = JobState::kCancelled;
          final_error = Status::Cancelled("job cancelled while running");
        }
        cb = FinishLocked(id, &it->second, final_state, shared, final_error);
      }
    }
    if (cb) {
      cb(cancelled ? Result<GeneratedInterface>(
                         Status::Cancelled("job cancelled while running"))
                   : std::move(result));
    }
  });
  return id;
}

Result<GenerationService::JobId> GenerationService::SubmitJob(JobSpec spec) {
  return SubmitJobWithCallback(std::move(spec), nullptr);
}

Result<GenerationService::JobInfo> GenerationService::GetJob(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  return SnapshotLocked(id, it->second);
}

Result<GenerationService::JobInfo> GenerationService::WaitJob(JobId id,
                                                              int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  auto terminal = [&] {
    auto jt = jobs_.find(id);
    // Evicted mid-wait counts as terminal; the re-lookup below reports it.
    return jt == jobs_.end() || SnapshotLocked(id, jt->second).terminal();
  };
  if (timeout_ms < 0) {
    jobs_cv_.wait(lock, terminal);
  } else {
    jobs_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), terminal);
  }
  it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("job id " + std::to_string(id) +
                            " evicted from history");
  }
  return SnapshotLocked(id, it->second);
}

Result<GenerationService::JobInfo> GenerationService::CancelJob(JobId id) {
  std::function<void(Result<GeneratedInterface>)> cb;
  JobInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("unknown job id " + std::to_string(id));
    }
    if (it->second.state == JobState::kQueued) {
      --jobs_pending_;
      ServiceMetrics::Get().jobs_pending->Set(static_cast<double>(jobs_pending_));
      cb = FinishLocked(id, &it->second, JobState::kCancelled, nullptr,
                        Status::Cancelled("job cancelled while queued"));
    } else if (it->second.state == JobState::kRunning) {
      // Flag the running search; its hot loop observes the relaxed-atomic
      // stop within one check interval and the worker then finishes the job
      // as kCancelled with the best-so-far partial result. The snapshot
      // returned here may still say kRunning — WaitJob sees the transition.
      if (it->second.stop != nullptr) {
        it->second.stop->RequestStop(StopReason::kCancelled);
      }
    }
    info = SnapshotLocked(id, it->second);
  }
  if (cb) cb(Status::Cancelled("job cancelled while queued"));
  return info;
}

Result<GenerationService::JobProgress> GenerationService::GetJobProgress(
    JobId id, uint64_t last_seen_version, int64_t wait_ms) {
  std::shared_ptr<ProgressSink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("unknown job id " + std::to_string(id));
    }
    sink = it->second.progress;
  }
  // Wait on the sink's own condvar outside mu_ (FinishLocked closes the
  // sink before notifying, so a terminal transition wakes this too).
  if (sink != nullptr && wait_ms > 0) {
    sink->WaitVersionAbove(last_seen_version, wait_ms);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("job id " + std::to_string(id) +
                            " evicted from history");
  }
  JobProgress p;
  p.id = id;
  p.state = it->second.state;
  p.terminal = p.state == JobState::kDone || p.state == JobState::kFailed ||
               p.state == JobState::kCancelled;
  if (sink != nullptr) {
    const ProgressSink::Event latest = sink->Latest();
    p.version = latest.version;
    p.best_cost = latest.cost;
    p.iteration = latest.iteration;
    p.ms = latest.ms;
    p.best_tree = latest.tree;
  }
  return p;
}

size_t GenerationService::jobs_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_pending_;
}

GenerationService::JobFuture GenerationService::Submit(JobSpec spec) {
  auto promise = std::make_shared<std::promise<Result<GeneratedInterface>>>();
  JobFuture future = promise->get_future();
  Result<JobId> id = SubmitJobWithCallback(
      std::move(spec),
      [promise](Result<GeneratedInterface> r) { promise->set_value(std::move(r)); });
  if (!id.ok()) promise->set_value(id.status());
  return future;
}

std::vector<GenerationService::JobFuture> GenerationService::SubmitBatch(
    std::vector<JobSpec> specs) {
  std::vector<JobFuture> futures;
  futures.reserve(specs.size());
  for (JobSpec& spec : specs) {
    futures.push_back(Submit(std::move(spec)));
  }
  return futures;
}

size_t GenerationService::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

size_t GenerationService::jobs_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_executed_;
}

size_t GenerationService::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

GenerationService::CountersSnapshot GenerationService::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CountersSnapshot s;
  s.jobs_submitted = jobs_submitted_;
  s.jobs_executed = jobs_executed_;
  s.jobs_pending = jobs_pending_;
  s.cache_hits = cache_hits_;
  s.sessions_opened = sessions_opened_;
  s.cache_probes = cache_probes_;
  s.cache_probe_hits = cache_probe_hits_;
  s.tt_peer_ingested = tt_peer_ingested_;
  s.tt_peer_hits = tt_peer_hits_;
  s.learn_seeded = learn_seeded_;
  s.learn_recorded = learn_recorded_;
  if (experience_ != nullptr) {
    s.learn_store_entries = experience_->size();
    s.learn_hits = experience_->hits();
    s.learn_misses = experience_->misses();
    s.learn_saves = experience_->saves();
    s.learn_loads = experience_->loads();
  }
  return s;
}

}  // namespace ifgen
