#include "runtime/service.h"

#include <algorithm>
#include <cstring>

#include "sql/parser.h"
#include "sql/unparser.h"
#include "util/hash.h"

namespace ifgen {

namespace {

uint64_t HashU64(uint64_t h, uint64_t v) { return HashCombine(h, v); }

uint64_t HashF64(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  return HashCombine(h, bits);
}

/// Fingerprint of every option that can change a job's output. Hashed
/// field-by-field (structs have padding, so raw-byte hashes would be
/// nondeterministic) — except CostConstants, whose members are uniformly
/// 8-byte doubles/size_t and therefore padding-free.
uint64_t OptionsFingerprint(const GeneratorOptions& o) {
  uint64_t h = 0x1f65ULL;
  h = HashU64(h, static_cast<uint64_t>(o.screen.width));
  h = HashU64(h, static_cast<uint64_t>(o.screen.height));
  h = HashU64(h, static_cast<uint64_t>(o.algorithm));

  const SearchOptions& s = o.search;
  h = HashU64(h, static_cast<uint64_t>(s.time_budget_ms));
  h = HashU64(h, s.max_iterations);
  h = HashU64(h, s.seed);
  h = HashF64(h, s.exploration_c);
  h = HashU64(h, s.rollout_len);
  h = HashF64(h, s.rollout_stop_prob);
  h = HashU64(h, s.expand_all_children ? 1 : 0);
  h = HashU64(h, s.max_expansions_per_iteration);
  h = HashU64(h, s.max_search_tree_payload);
  h = HashF64(h, s.rollout_forward_bias);
  h = HashF64(h, s.rollout_saturate_prob);
  h = HashF64(h, s.rollout_eval_prob);
  h = HashU64(h, s.beam_width);
  h = HashU64(h, s.exhaustive_max_depth);
  h = HashU64(h, s.exhaustive_max_states);

  const ParallelOptions& p = o.parallel;
  h = HashU64(h, p.num_threads);
  h = HashU64(h, static_cast<uint64_t>(p.mode));
  h = HashU64(h, p.tt_shards);
  h = HashU64(h, p.leaf_rollouts);

  const RuleSetOptions& r = o.rules;
  h = HashU64(h, r.enable_noop_wrap ? 1 : 0);
  h = HashU64(h, static_cast<uint64_t>(r.all2any_max_alts));
  h = HashU64(h, r.max_tree_nodes);

  h = HashBytes(std::string_view(reinterpret_cast<const char*>(&o.constants),
                                 sizeof o.constants),
                h);

  h = HashU64(h, o.k_assignments);
  h = HashU64(h, o.parse_limit);
  h = HashF64(h, o.enumeration_cap);
  return h;
}

}  // namespace

uint64_t GenerationService::JobKey(const JobSpec& spec) {
  std::vector<std::string> canonical;
  canonical.reserve(spec.sqls.size());
  for (const std::string& sql : spec.sqls) {
    auto parsed = ParseQuery(sql);
    if (parsed.ok()) {
      auto unparsed = Unparse(*parsed);
      canonical.push_back(unparsed.ok() ? *unparsed : sql);
    } else {
      canonical.push_back(sql);
    }
  }
  std::sort(canonical.begin(), canonical.end());
  uint64_t h = OptionsFingerprint(spec.options);
  for (const std::string& sql : canonical) {
    h = HashCombine(h, HashBytes(sql));
  }
  return h;
}

Result<std::shared_ptr<ExecutionBackend>> GenerationService::BackendFor(
    const Database* db, BackendKind kind) {
  if (db == nullptr) return Status::Invalid("BackendFor: null database");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = backends_.find({db, kind});
    if (it != backends_.end()) return it->second;
  }
  // Construct outside the lock (SQLite ingestion can be slow); on a race
  // the first-inserted instance wins so plan caches stay shared.
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<ExecutionBackend> fresh,
                         CreateBackend(kind, db));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      backends_.emplace(std::make_pair(db, kind),
                        std::shared_ptr<ExecutionBackend>(std::move(fresh)));
  return it->second;
}

size_t GenerationService::backends_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_.size();
}

Result<std::shared_ptr<InteractiveRuntime>> GenerationService::OpenSession(
    const GeneratedInterface& iface, const CostConstants& constants,
    const Database* db, BackendKind kind, InteractiveRuntime::Options opts) {
  IFGEN_ASSIGN_OR_RETURN(std::shared_ptr<ExecutionBackend> backend,
                         BackendFor(db, kind));
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<InteractiveRuntime> runtime,
                         InteractiveRuntime::Create(iface, constants,
                                                    std::move(backend), opts));
  std::lock_guard<std::mutex> lock(mu_);
  ++sessions_opened_;
  return std::shared_ptr<InteractiveRuntime>(std::move(runtime));
}

size_t GenerationService::sessions_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_opened_;
}

GenerationService::GenerationService() : GenerationService(Options()) {}

GenerationService::GenerationService(Options opts)
    : cache_capacity_(opts.cache_capacity),
      pool_(std::max<size_t>(1, opts.num_threads)) {}

GenerationService::~GenerationService() = default;

std::shared_ptr<const GeneratedInterface> GenerationService::CacheLookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  ++cache_hits_;
  return it->second->second;
}

void GenerationService::CacheStore(uint64_t key,
                                   std::shared_ptr<const GeneratedInterface> value) {
  if (cache_capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // someone else finished the same job first
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > cache_capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

GenerationService::JobFuture GenerationService::Submit(JobSpec spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_submitted_;
  }
  const uint64_t key = JobKey(spec);
  if (auto cached = CacheLookup(key)) {
    std::promise<Result<GeneratedInterface>> ready;
    ready.set_value(*cached);  // copy out of the shared cache entry
    return ready.get_future();
  }
  auto promise = std::make_shared<std::promise<Result<GeneratedInterface>>>();
  JobFuture future = promise->get_future();
  pool_.Submit([this, key, promise, spec = std::move(spec)]() mutable {
    Result<GeneratedInterface> result = GenerateInterface(spec.sqls, spec.options);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++jobs_executed_;
    }
    if (result.ok()) {
      CacheStore(key, std::make_shared<const GeneratedInterface>(*result));
    }
    promise->set_value(std::move(result));
  });
  return future;
}

std::vector<GenerationService::JobFuture> GenerationService::SubmitBatch(
    std::vector<JobSpec> specs) {
  std::vector<JobFuture> futures;
  futures.reserve(specs.size());
  for (JobSpec& spec : specs) {
    futures.push_back(Submit(std::move(spec)));
  }
  return futures;
}

size_t GenerationService::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

size_t GenerationService::jobs_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_executed_;
}

size_t GenerationService::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

}  // namespace ifgen
