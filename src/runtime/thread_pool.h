#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ifgen {

/// \brief A work-stealing thread pool.
///
/// Each worker owns a deque: the owner pushes and pops at the front (LIFO,
/// cache-friendly for recursively spawned work), thieves steal from the back
/// (FIFO, takes the oldest — and usually largest — task). External Submit
/// calls distribute round-robin across workers.
///
/// The pool is also usable cooperatively: TryRunOne lets a blocked caller
/// (e.g. TaskGroup::Wait) execute pending work instead of sleeping, which
/// makes nested task groups deadlock-free even when every worker is busy.
///
/// A pool of zero threads is valid and means "inline execution": Submit runs
/// the task on the calling thread. That keeps `num_threads=1` code paths
/// free of any thread handoff.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 = inline mode (no threads).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (runs it inline when the pool has no threads).
  void Submit(std::function<void()> fn);

  /// Steals and runs one pending task on the calling thread; false when no
  /// task was available.
  bool TryRunOne();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted over the pool's lifetime (diagnostics).
  size_t tasks_submitted() const { return tasks_submitted_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(size_t index);
  bool PopFrom(size_t index, bool steal, std::function<void()>* out);
  bool FindWork(size_t self, std::function<void()>* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> next_worker_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> tasks_submitted_{0};
};

/// \brief A group of tasks whose completion can be awaited together.
///
/// Run schedules onto the pool (or inline for a null/empty pool); Wait
/// blocks until every task of this group finished, *helping* the pool by
/// running pending tasks while it waits. Exceptions from tasks are not
/// propagated (the library is exception-free by convention; tasks must
/// report through their own channels).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);
  void Wait();

 private:
  ThreadPool* pool_;
  /// Guarded by mu_ (not atomic on purpose): the completing task's final
  /// decrement-and-notify and Wait's last check must synchronize through
  /// the same mutex, or a completing task could touch a TaskGroup that a
  /// woken Wait has already destroyed.
  size_t outstanding_ = 0;
  std::mutex mu_;
  std::condition_variable done_cv_;
};

/// Runs fn(i) for i in [0, n), distributing contiguous chunks across the
/// pool; blocks until all iterations complete. Chunk count adapts to the
/// pool width so per-task overhead stays negligible.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace ifgen
