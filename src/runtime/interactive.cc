#include "runtime/interactive.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cost/cost_model.h"
#include "engine/exec_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "widgets/appropriateness.h"

namespace ifgen {

namespace {

/// Per-transition-class step counters + maintenance-path counters mirrored
/// onto the registry (the per-instance `Counters` struct stays authoritative
/// for session-scoped views).
obs::CounterFamily& StepsMetricFamily() {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_runtime_steps_total",
      "Interactive runtime steps by transition class");
  return *f;
}
obs::Counter& RuntimePathMetric(const char* path) {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_runtime_path_total",
      "Interactive runtime result-maintenance outcomes by path "
      "(noop, result_cache_hit, retruncate, delta_exec, full_exec, fallback)");
  return *f->WithLabels({{"path", path}});
}
obs::Histogram& StepLatencyMetric() {
  static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "ifgen_runtime_step_duration_us",
      "Latency of interactive runtime steps (microseconds)",
      obs::HistogramOptions{1.0, 2.0, 24});
  return *h;
}

/// Type-tagged, length-prefixed cell encoding: distinct Values never
/// collide ("1" the int vs "1" the string vs 1.0 the double).
void AppendCell(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "n|";
  } else if (v.is_int()) {
    *out += "i" + std::to_string(v.AsInt()) + "|";
  } else if (v.is_double()) {
    *out += "d" + StrFormat("%.17g", v.AsDouble()) + "|";
  } else {
    const std::string& s = v.AsString();
    *out += "s" + std::to_string(s.size()) + ":" + s + "|";
  }
}

std::string RowFingerprint(const Table& t, size_t row) {
  std::string key;
  for (size_t c = 0; c < t.num_columns(); ++c) AppendCell(t.At(row, c), &key);
  return key;
}

std::string KeyFingerprint(const Table& t, size_t row,
                           const std::vector<size_t>& key_cols) {
  std::string key;
  for (size_t c : key_cols) AppendCell(t.At(row, c), &key);
  return key;
}

std::string FingerprintParams(const std::vector<Value>& params) {
  std::string fp;
  for (const Value& v : params) AppendCell(v, &fp);
  return fp;
}

std::vector<Value> RowOf(const Table& t, size_t row) {
  std::vector<Value> out;
  out.reserve(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) out.push_back(t.At(row, c));
  return out;
}

bool SameSchema(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().columns[c].name != b.schema().columns[c].name) return false;
  }
  return true;
}

/// Output columns usable as a stable row identity: the non-aggregate items
/// of an aggregate SELECT list (group keys are unique per result row).
/// Empty for non-aggregate queries — no stable identity, diffs are pure
/// adds/removes.
std::vector<size_t> GroupKeyCols(const Ast& shape) {
  const Ast* project = nullptr;
  for (const Ast& c : shape.children) {
    if (c.sym == Symbol::kProject) project = &c;
  }
  if (project == nullptr) return {};
  bool has_agg = false;
  for (const Ast& item : project->children) has_agg |= ContainsAggregate(item);
  if (!has_agg) return {};
  std::vector<size_t> keys;
  for (size_t i = 0; i < project->children.size(); ++i) {
    const Ast& item = project->children[i];
    if (!ContainsAggregate(item) && item.sym != Symbol::kStar) keys.push_back(i);
  }
  return keys;
}

}  // namespace

std::vector<InteractiveRuntime::RowChange> DiffTables(
    const Table& before, const Table& after, const std::vector<size_t>& key_cols) {
  using RowChange = InteractiveRuntime::RowChange;
  std::vector<RowChange> out;
  if (!SameSchema(before, after)) {
    // Different result shape: everything turned over.
    for (size_t r = 0; r < before.num_rows(); ++r) {
      out.push_back({RowChange::Kind::kRemove, RowOf(before, r), {}});
    }
    for (size_t r = 0; r < after.num_rows(); ++r) {
      out.push_back({RowChange::Kind::kAdd, RowOf(after, r), {}});
    }
    return out;
  }

  // Multiset diff: rows common to both sides cancel out. Before-row
  // fingerprints are computed once and reused by the removed pass.
  std::vector<std::string> before_keys;
  before_keys.reserve(before.num_rows());
  std::unordered_map<std::string, int64_t> counts;
  for (size_t r = 0; r < before.num_rows(); ++r) {
    before_keys.push_back(RowFingerprint(before, r));
    ++counts[before_keys.back()];
  }
  std::vector<size_t> added;
  for (size_t r = 0; r < after.num_rows(); ++r) {
    auto it = counts.find(RowFingerprint(after, r));
    if (it != counts.end() && it->second > 0) {
      --it->second;
    } else {
      added.push_back(r);
    }
  }
  std::vector<size_t> removed;
  for (size_t r = 0; r < before.num_rows(); ++r) {
    auto it = counts.find(before_keys[r]);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      removed.push_back(r);
    }
  }

  // Pair removed/added rows sharing a group key into updates. Keys are
  // unique per result for real GROUP BY outputs; duplicate keys (defensive)
  // fall back to add/remove.
  std::vector<uint8_t> removed_used(removed.size(), 0);
  std::unordered_map<std::string, int> removed_by_key;
  bool use_keys = !key_cols.empty();
  if (use_keys) {
    for (size_t i = 0; i < removed.size(); ++i) {
      std::string k = KeyFingerprint(before, removed[i], key_cols);
      auto [it, inserted] = removed_by_key.emplace(k, static_cast<int>(i));
      if (!inserted) it->second = -1;  // ambiguous key
    }
  }
  std::vector<RowChange> adds_and_updates;
  for (size_t r : added) {
    if (use_keys) {
      auto it = removed_by_key.find(KeyFingerprint(after, r, key_cols));
      if (it != removed_by_key.end() && it->second >= 0 &&
          !removed_used[static_cast<size_t>(it->second)]) {
        size_t ri = static_cast<size_t>(it->second);
        removed_used[ri] = 1;
        adds_and_updates.push_back({RowChange::Kind::kUpdate, RowOf(after, r),
                                    RowOf(before, removed[ri])});
        continue;
      }
    }
    adds_and_updates.push_back({RowChange::Kind::kAdd, RowOf(after, r), {}});
  }
  for (size_t i = 0; i < removed.size(); ++i) {
    if (!removed_used[i]) {
      out.push_back({RowChange::Kind::kRemove, RowOf(before, removed[i]), {}});
    }
  }
  out.insert(out.end(), std::make_move_iterator(adds_and_updates.begin()),
             std::make_move_iterator(adds_and_updates.end()));
  return out;
}

// ---------------------------------------------------------------------------

InteractiveRuntime::InteractiveRuntime(InterfaceSession session,
                                       std::shared_ptr<ExecutionBackend> backend,
                                       Options opts)
    : session_(std::make_unique<InterfaceSession>(std::move(session))),
      backend_(std::move(backend)),
      opts_(opts) {}

Result<std::unique_ptr<InteractiveRuntime>> InteractiveRuntime::Create(
    const GeneratedInterface& iface, const CostConstants& constants,
    std::shared_ptr<ExecutionBackend> backend, Options opts) {
  if (backend == nullptr) return Status::Invalid("InteractiveRuntime: null backend");
  IFGEN_ASSIGN_OR_RETURN(InterfaceSession session,
                         InterfaceSession::Create(iface, constants));
  std::unique_ptr<InteractiveRuntime> rt(
      new InteractiveRuntime(std::move(session), std::move(backend), opts));
  rt->constants_ = constants;
  {
    std::lock_guard<std::mutex> lock(rt->mu_);
    IFGEN_RETURN_NOT_OK(rt->StepLocked(0, 0.0, 0.0).status());
    // The initial execution primes prev state and version 1; counters track
    // *interactions*, so they restart at zero.
    rt->counters_ = Counters{};
  }
  return rt;
}

Result<InteractiveRuntime::StepReport> InteractiveRuntime::LoadQuery(
    const Ast& query) {
  std::lock_guard<std::mutex> lock(mu_);
  IFGEN_ASSIGN_OR_RETURN(InterfaceSession::StepReport sess,
                         session_->LoadQuery(query));
  return StepLocked(sess.widgets_changed, sess.interaction_cost,
                    sess.navigation_cost);
}

Result<InteractiveRuntime::StepReport> InteractiveRuntime::SetAnyChoice(
    int choice_id, int option_index) {
  std::lock_guard<std::mutex> lock(mu_);
  IFGEN_RETURN_NOT_OK(session_->SetAnyChoice(choice_id, option_index));
  double ic = 0.0, nc = 0.0;
  PriceWidgetChange(choice_id, &ic, &nc);
  return StepLocked(1, ic, nc);
}

Result<InteractiveRuntime::StepReport> InteractiveRuntime::SetOptPresent(
    int choice_id, bool present) {
  std::lock_guard<std::mutex> lock(mu_);
  IFGEN_RETURN_NOT_OK(session_->SetOptPresent(choice_id, present));
  double ic = 0.0, nc = 0.0;
  PriceWidgetChange(choice_id, &ic, &nc);
  return StepLocked(1, ic, nc);
}

Result<InteractiveRuntime::StepReport> InteractiveRuntime::SetMultiCount(
    int choice_id, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  IFGEN_RETURN_NOT_OK(session_->SetMultiCount(choice_id, count));
  double ic = 0.0, nc = 0.0;
  PriceWidgetChange(choice_id, &ic, &nc);
  return StepLocked(1, ic, nc);
}

void InteractiveRuntime::PriceWidgetChange(int choice_id, double* interaction_cost,
                                           double* navigation_cost) const {
  const WidgetTree& wt = session_->widgets();
  auto it = wt.path_by_choice.find(choice_id);
  if (it == wt.path_by_choice.end()) return;  // owned by an enclosing adder
  const WidgetNode* w = wt.NodeAtPath(it->second);
  if (w == nullptr) return;
  *interaction_cost = InteractionCost(constants_, w->kind, w->domain);
  *navigation_cost = SteinerNavigationCost(wt.root, {it->second}, constants_);
}

Result<InteractiveRuntime::StepReport> InteractiveRuntime::StepLocked(
    size_t widgets_changed, double interaction_cost, double navigation_cost) {
  obs::TraceSpan span("runtime.step", "runtime");
  Stopwatch step_watch;
  // Create()'s priming execution (version_ 0) resets the per-instance
  // counters afterward; keep the registry in lockstep by not counting it
  // either — both views track *interactions*.
  const bool priming = version_ == 0;
  auto bump_path = [priming](const char* path) {
    if (!priming) RuntimePathMetric(path).Inc();
  };
  StepReport report;
  report.widgets_changed = widgets_changed;
  report.interaction_cost = interaction_cost;
  report.navigation_cost = navigation_cost;

  IFGEN_ASSIGN_OR_RETURN(Ast query, session_->CurrentQuery());
  IFGEN_ASSIGN_OR_RETURN(ParameterizedQuery pq, ParameterizeQuery(query));

  bool same_shape = !prev_key_.empty() && pq.key == prev_key_;
  ShapeDeltaInfo info = same_shape ? prev_info_ : AnalyzeShape(pq);
  TransitionClass cls = TransitionClass::kShapeChange;
  if (same_shape && prev_result_ != nullptr) {
    cls = ClassifyParamDelta(info, prev_params_, pq.params);
  }
  report.transition = cls;

  const std::string memo_key = pq.key + "\x1f" + FingerprintParams(pq.params);
  CachedResultPtr out;
  if (opts_.enable_delta) {
    if (cls == TransitionClass::kNoop) {
      out = prev_result_;
      report.incremental = true;
      ++counters_.noops;
      bump_path("noop");
    }
    if (out == nullptr) {
      out = MemoLookup(memo_key);
      if (out != nullptr) {
        report.incremental = true;
        report.from_cache = true;
        ++counters_.cache_hits;
        bump_path("result_cache_hit");
      }
    }
    if (out == nullptr && cls == TransitionClass::kLimitOnly &&
        prev_result_->delta_state()) {
      auto limit = ResolveLimitParams(info, pq.params);
      if (limit.ok()) {
        // Shares the retained pre-truncation table and selection; only the
        // truncated view (if the cap cuts) is materialized.
        out = MakeCachedShared(prev_result_->full, *limit, prev_result_->selection);
        report.incremental = true;
        ++counters_.retruncates;
        bump_path("retruncate");
      }
    }
    if (out == nullptr &&
        (cls == TransitionClass::kTighten || cls == TransitionClass::kLoosen) &&
        prev_result_->delta_state()) {
      auto prepared = backend_->PrepareShape(pq);
      if (prepared.ok()) {
        if (auto* dc = dynamic_cast<DeltaCapablePlan*>(*prepared)) {
          DeltaHint hint;
          hint.mode = cls == TransitionClass::kTighten ? DeltaHint::Mode::kTighten
                                                       : DeltaHint::Mode::kLoosen;
          hint.prior_selection = prev_result_->selection.get();
          IFGEN_ASSIGN_OR_RETURN(DeltaResult dr, dc->ExecuteDelta(pq.params, &hint));
          out = MakeCached(std::move(dr));
          report.incremental = true;
          ++counters_.delta_execs;
          bump_path("delta_exec");
        }
      }
    }
    if (out == nullptr) {
      IFGEN_ASSIGN_OR_RETURN(out, ExecuteFull(pq));
      ++counters_.full_execs;
      ++counters_.fallbacks;
      bump_path("full_exec");
      bump_path("fallback");
    }
  } else {
    IFGEN_ASSIGN_OR_RETURN(out, ExecuteFull(pq));
    ++counters_.full_execs;
    bump_path("full_exec");
  }

  // Row-level delta against the previous served result (also feeds the
  // change-feed semantics tests). Pointer-equal results (noops, immediate
  // memo revisits) are identical by construction — skip the O(rows) diff.
  std::vector<size_t> key_cols =
      same_shape ? prev_group_key_cols_ : GroupKeyCols(pq.shape);
  report.rows = out->served->num_rows();
  if (prev_result_ == nullptr) {
    report.rows_added = out->served->num_rows();
  } else if (out->served != prev_result_->served) {
    for (const RowChange& c :
         DiffTables(*prev_result_->served, *out->served, key_cols)) {
      switch (c.kind) {
        case RowChange::Kind::kAdd:
          ++report.rows_added;
          break;
        case RowChange::Kind::kRemove:
          ++report.rows_removed;
          break;
        case RowChange::Kind::kUpdate:
          ++report.rows_updated;
          break;
      }
    }
  }

  if (opts_.enable_delta) MemoStore(memo_key, out);
  prev_key_ = std::move(pq.key);
  prev_params_ = std::move(pq.params);
  prev_info_ = std::move(info);
  prev_group_key_cols_ = std::move(key_cols);
  prev_result_ = std::move(out);
  ++version_;
  version_cv_.notify_all();
  ++counters_.steps;
  if (!priming) {
    StepsMetricFamily()
        .WithLabels({{"transition", std::string(TransitionClassName(cls))}})
        ->Inc();
    StepLatencyMetric().Observe(static_cast<double>(step_watch.ElapsedMicros()));
  }
  last_report_ = report;
  return report;
}

InteractiveRuntime::CachedResultPtr InteractiveRuntime::MakeCached(DeltaResult dr) {
  return MakeCachedShared(
      std::make_shared<const Table>(std::move(dr.full)), dr.limit,
      std::make_shared<const std::vector<uint32_t>>(std::move(dr.selection)));
}

InteractiveRuntime::CachedResultPtr InteractiveRuntime::MakeCachedShared(
    std::shared_ptr<const Table> full, int64_t limit,
    std::shared_ptr<const std::vector<uint32_t>> selection) {
  auto cr = std::make_shared<CachedResult>();
  cr->limit = limit;
  cr->selection = std::move(selection);
  if (limit >= 0 && static_cast<size_t>(limit) < full->num_rows()) {
    Table t = *full;
    TruncateRows(&t, limit);
    cr->served = std::make_shared<const Table>(std::move(t));
  } else {
    cr->served = full;
  }
  cr->full = std::move(full);
  return cr;
}

Result<InteractiveRuntime::CachedResultPtr> InteractiveRuntime::ExecuteFull(
    const ParameterizedQuery& pq) {
  IFGEN_ASSIGN_OR_RETURN(PreparedQuery * plan, backend_->PrepareShape(pq));
  DeltaCapablePlan* dc =
      opts_.enable_delta ? dynamic_cast<DeltaCapablePlan*>(plan) : nullptr;
  if (dc != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(DeltaResult dr, dc->ExecuteDelta(pq.params, nullptr));
    return MakeCached(std::move(dr));
  }
  auto cr = std::make_shared<CachedResult>();
  IFGEN_ASSIGN_OR_RETURN(Table served, plan->Execute(pq.params));
  cr->served = std::make_shared<const Table>(std::move(served));
  cr->full = cr->served;
  return CachedResultPtr(std::move(cr));
}

InteractiveRuntime::CachedResultPtr InteractiveRuntime::MemoLookup(
    const std::string& key) {
  auto it = memo_.find(key);
  if (it == memo_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void InteractiveRuntime::MemoStore(const std::string& key, CachedResultPtr value) {
  if (opts_.result_cache_capacity == 0) return;
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(value);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  memo_[key] = lru_.begin();
  while (lru_.size() > opts_.result_cache_capacity) {
    memo_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// State + change feed.

Result<Table> InteractiveRuntime::CurrentResult() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (prev_result_ == nullptr) return Status::Invalid("no result yet");
  return *prev_result_->served;
}

Result<std::string> InteractiveRuntime::CurrentSql() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_->CurrentSql();
}

Result<Ast> InteractiveRuntime::CurrentQuery() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_->CurrentQuery();
}

uint64_t InteractiveRuntime::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

uint64_t InteractiveRuntime::WaitForVersionExceeding(uint64_t last_seen,
                                                     int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_ms > 0) {
    version_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [&] { return version_ > last_seen; });
  }
  return version_;
}

InteractiveRuntime::Counters InteractiveRuntime::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

InteractiveRuntime::SubscriberId InteractiveRuntime::Subscribe() {
  return Subscribe(nullptr);
}

InteractiveRuntime::SubscriberId InteractiveRuntime::Subscribe(
    Table* initial_snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriberId id = next_subscriber_++;
  Subscriber& sub = subscribers_[id];
  sub.version = version_;
  if (prev_result_ != nullptr) sub.snapshot = prev_result_->served;  // shared
  if (initial_snapshot != nullptr && sub.snapshot != nullptr) {
    *initial_snapshot = *sub.snapshot;
  }
  return id;
}

Status InteractiveRuntime::Unsubscribe(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return subscribers_.erase(id) > 0
             ? Status::OK()
             : Status::NotFound("no such subscriber: " + std::to_string(id));
}

Result<InteractiveRuntime::ChangeBatch> InteractiveRuntime::Poll(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscribers_.find(id);
  if (it == subscribers_.end()) {
    return Status::NotFound("no such subscriber: " + std::to_string(id));
  }
  Subscriber& sub = it->second;
  ChangeBatch batch;
  batch.from_version = sub.version;
  batch.to_version = version_;
  batch.last_step = last_report_;
  if (sub.version != version_ && prev_result_ != nullptr) {
    if (sub.snapshot != prev_result_->served) {  // pointer-equal => no diff
      batch.changes = DiffTables(sub.snapshot == nullptr ? Table() : *sub.snapshot,
                                 *prev_result_->served, prev_group_key_cols_);
    }
    sub.snapshot = prev_result_->served;
    sub.version = version_;
  }
  return batch;
}

}  // namespace ifgen
