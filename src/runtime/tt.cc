#include "runtime/tt.h"

#include <unordered_map>

namespace ifgen {

struct TranspositionTable::Shard {
  mutable std::mutex mu;
  std::unordered_map<uint64_t, Entry> map;
};

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TranspositionTable::~TranspositionTable() = default;

TranspositionTable::TranspositionTable(size_t num_shards) {
  size_t n = RoundUpPow2(num_shards == 0 ? 1 : num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = n - 1;
}

TranspositionTable::Shard& TranspositionTable::ShardFor(uint64_t key) {
  return *shards_[key & shard_mask_];
}

const TranspositionTable::Shard& TranspositionTable::ShardFor(uint64_t key) const {
  return *shards_[key & shard_mask_];
}

bool TranspositionTable::Visit(uint64_t key) {
  Shard& shard = ShardFor(key);
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = shard.map.try_emplace(key).second;
  }
  if (!inserted) hits_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

std::optional<double> TranspositionTable::LookupCost(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.has_cost) {
      cost_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.cost;
    }
  }
  return std::nullopt;
}

void TranspositionTable::StoreCost(uint64_t key, double cost) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[key];
  if (!e.has_cost) {
    e.has_cost = true;
    e.cost = cost;
  }
}

void TranspositionTable::AccumulateReward(uint64_t key, double reward) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[key];
  ++e.visits;
  e.total_reward += reward;
}

TranspositionTable::Entry TranspositionTable::Get(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? Entry{} : it->second;
}

size_t TranspositionTable::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace ifgen
