#include "workload/synthetic.h"

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ifgen {

namespace {
constexpr size_t kNumColumns = 6;
}

std::vector<std::string> GenerateLog(const LogSpec& spec) {
  Rng rng(spec.seed);
  std::vector<std::string> log;
  log.reserve(spec.num_queries);
  for (size_t qi = 0; qi < spec.num_queries; ++qi) {
    std::string sql = "select ";
    // TOP.
    if (spec.num_top_variants > 0) {
      static const int kTops[] = {10, 100, 1000, 5000, 50};
      sql += StrFormat("top %d ", kTops[qi % std::min<size_t>(spec.num_top_variants, 5)]);
    }
    // Projection.
    size_t proj = qi % std::max<size_t>(1, spec.num_projection_variants);
    if (proj + 1 == spec.num_projection_variants && spec.num_projection_variants > 1) {
      sql += "count(*)";
    } else {
      sql += StrFormat("c%zu", proj % kNumColumns);
    }
    // Table.
    sql += StrFormat(" from t%zu", qi % std::max<size_t>(1, spec.num_tables));
    // Predicates.
    bool drop_where = spec.optional_where && qi % 3 == 2;
    size_t preds = spec.vary_predicate_count
                       ? 1 + qi % std::max<size_t>(1, spec.num_predicates)
                       : spec.num_predicates;
    if (!drop_where && preds > 0) {
      sql += " where ";
      for (size_t p = 0; p < preds; ++p) {
        if (p > 0) sql += " and ";
        int lo = static_cast<int>(rng.UniformInt(0, 40));
        int hi = lo + static_cast<int>(rng.UniformInt(5, 50));
        sql += StrFormat("c%zu between %d and %d", p % kNumColumns, lo, hi);
      }
    }
    log.push_back(std::move(sql));
  }
  return log;
}

Database MakeSyntheticDatabase(const LogSpec& spec, size_t rows_per_table) {
  Database db;
  Rng rng(spec.seed ^ 0xabcdefULL);
  for (size_t t = 0; t < std::max<size_t>(1, spec.num_tables); ++t) {
    TableSchema schema;
    schema.name = StrFormat("t%zu", t);
    for (size_t c = 0; c < kNumColumns; ++c) {
      schema.columns.push_back({StrFormat("c%zu", c), ColumnType::kDouble});
    }
    Table table(schema);
    for (size_t r = 0; r < rows_per_table; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < kNumColumns; ++c) {
        row.emplace_back(rng.UniformDouble(0, 100));
      }
      Status st = table.AppendRow(std::move(row));
      IFGEN_CHECK(st.ok()) << st.ToString();
    }
    db.AddTable(std::move(table));
  }
  return db;
}

}  // namespace ifgen
