#include "workload/sdss.h"

#include "engine/datagen.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

std::string SdssWhere(int u_lo, int u_hi, int g_lo, int g_hi, int r_lo, int r_hi,
                      int i_lo, int i_hi) {
  return StrFormat(
      "u between %d and %d and g between %d and %d and "
      "r between %d and %d and i between %d and %d",
      u_lo, u_hi, g_lo, g_hi, r_lo, r_hi, i_lo, i_hi);
}

}  // namespace

std::vector<std::string> SdssListing1() {
  // Queries 1-2 are printed verbatim in the paper; 3-10 follow its stated
  // pattern (same WHERE structure; 6-8 share one WHERE clause).
  const std::string w1 = SdssWhere(0, 30, 0, 30, 0, 30, 0, 30);
  const std::string w2 = SdssWhere(1, 29, 10, 30, 9, 30, 3, 28);
  const std::string w3 = SdssWhere(2, 28, 5, 25, 4, 26, 1, 27);
  const std::string w4 = SdssWhere(0, 20, 0, 20, 0, 20, 0, 20);
  const std::string w5 = SdssWhere(5, 25, 5, 25, 5, 25, 5, 25);
  const std::string w678 = SdssWhere(0, 15, 0, 15, 0, 15, 0, 15);
  const std::string w9 = SdssWhere(10, 30, 10, 30, 10, 30, 10, 30);
  const std::string w10 = SdssWhere(0, 30, 10, 20, 0, 30, 5, 15);
  return {
      "select top 10 objid from stars where " + w1,
      "select top 100 objid from galaxies where " + w2,
      "select top 1000 objid from quasars where " + w3,
      "select count(*) from stars where " + w4,
      "select objid from galaxies where " + w5,
      "select top 10 objid from quasars where " + w678,
      "select top 100 objid from stars where " + w678,
      "select top 1000 objid from galaxies where " + w678,
      "select count(*) from quasars where " + w9,
      "select objid from stars where " + w10,
  };
}

std::vector<std::string> SdssQueries6To8() {
  std::vector<std::string> all = SdssListing1();
  return {all[5], all[6], all[7]};
}

Database MakeSdssDatabase(size_t rows_per_table, uint64_t seed) {
  Database db;
  db.AddTable(MakeSdssTable("stars", rows_per_table, seed));
  db.AddTable(MakeSdssTable("galaxies", rows_per_table, seed + 1));
  db.AddTable(MakeSdssTable("quasars", rows_per_table, seed + 2));
  return db;
}

}  // namespace ifgen
