#include "workload/loader.h"

#include "workload/flights.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

namespace ifgen {

const std::vector<std::string>& WorkloadNames() {
  static const std::vector<std::string> kNames = {"flights", "sdss", "synthetic"};
  return kNames;
}

Result<WorkloadBundle> LoadWorkload(std::string_view name, size_t rows) {
  WorkloadBundle w;
  w.name = std::string(name);
  if (name == "flights") {
    w.log = FlightsLog();
    w.db = MakeFlightsDatabase(rows == 0 ? 2000 : rows);
    return w;
  }
  if (name == "sdss") {
    w.log = SdssListing1();
    w.db = MakeSdssDatabase(rows == 0 ? 500 : rows);
    return w;
  }
  if (name == "synthetic") {
    LogSpec spec;
    spec.num_queries = 12;
    spec.vary_predicate_count = true;
    spec.optional_where = true;
    w.log = GenerateLog(spec);
    w.db = MakeSyntheticDatabase(spec, rows == 0 ? 200 : rows);
    return w;
  }
  return Status::NotFound("unknown workload: " + std::string(name));
}

Result<std::vector<WorkloadBundle>> LoadAllWorkloads(size_t rows) {
  std::vector<WorkloadBundle> out;
  for (const std::string& name : WorkloadNames()) {
    IFGEN_ASSIGN_OR_RETURN(WorkloadBundle w, LoadWorkload(name, rows));
    out.push_back(std::move(w));
  }
  return out;
}

Result<std::unique_ptr<ExecutionBackend>> MakeBackendFor(const WorkloadBundle& w,
                                                         BackendKind kind) {
  return CreateBackend(kind, &w.db);
}

}  // namespace ifgen
