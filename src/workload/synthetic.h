#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"

namespace ifgen {

/// \brief Parameterized synthetic query-log families for scaling and
/// ablation benchmarks. Each family controls which difftree features the
/// log exercises (value variation, structural variation, optional clauses,
/// variable-length predicate lists -> MULTI/adder).
struct LogSpec {
  size_t num_queries = 10;
  /// Tables drawn round-robin from t0..t{num_tables-1}.
  size_t num_tables = 3;
  /// Distinct projections cycled through (col0, col1, ..., count(*)).
  size_t num_projection_variants = 2;
  /// BETWEEN conjuncts per query.
  size_t num_predicates = 2;
  /// When true, query i has 1 + (i mod num_predicates) conjuncts
  /// (exercises the Multi rule / adder widget).
  bool vary_predicate_count = false;
  /// When true, every third query drops the WHERE clause entirely
  /// (exercises the Optional rule / toggle widget).
  bool optional_where = false;
  /// Distinct TOP values cycled through; 0 disables TOP clauses.
  size_t num_top_variants = 3;
  uint64_t seed = 7;
};

/// Generates the SQL text of the log.
std::vector<std::string> GenerateLog(const LogSpec& spec);

/// A database with matching tables (columns c0..c5, numeric).
Database MakeSyntheticDatabase(const LogSpec& spec, size_t rows_per_table = 200);

}  // namespace ifgen
