#pragma once

#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/table.h"

namespace ifgen {

/// \brief One workload: a query log plus the database it runs against.
///
/// The uniform entry point benches and tests use to sweep every workload ×
/// every execution backend without per-workload glue.
struct WorkloadBundle {
  std::string name;
  std::vector<std::string> log;
  Database db;
};

/// The registered workload names: "flights", "sdss", "synthetic".
const std::vector<std::string>& WorkloadNames();

/// Loads a workload by name. `rows` scales the database (rows per table);
/// 0 keeps each workload's default size. The synthetic workload uses the
/// variation-rich LogSpec (variable predicate counts, optional WHERE).
Result<WorkloadBundle> LoadWorkload(std::string_view name, size_t rows = 0);

/// Loads every registered workload.
Result<std::vector<WorkloadBundle>> LoadAllWorkloads(size_t rows = 0);

/// Convenience: a backend of `kind` over the bundle's database (which must
/// outlive the returned backend).
Result<std::unique_ptr<ExecutionBackend>> MakeBackendFor(const WorkloadBundle& w,
                                                         BackendKind kind);

}  // namespace ifgen
