#include "workload/flights.h"

#include "engine/datagen.h"

namespace ifgen {

std::vector<std::string> FlightsLog() {
  return {
      "select carrier, avg(dep_delay) from flights where month = 1 group by carrier",
      "select carrier, avg(dep_delay) from flights where month = 6 group by carrier",
      "select carrier, avg(dep_delay) from flights where month = 12 group by carrier",
      "select origin, avg(dep_delay) from flights where month = 6 group by origin",
      "select origin, count(*) from flights where month = 6 group by origin",
      "select origin, count(*) from flights where month = 6 and dep_delay > 30 "
      "group by origin",
      "select carrier, count(*) from flights where month = 6 and dep_delay > 60 "
      "group by carrier",
      "select carrier, max(dep_delay) from flights where month = 6 group by carrier",
  };
}

Database MakeFlightsDatabase(size_t rows, uint64_t seed) {
  Database db;
  db.AddTable(MakeFlightsTable(rows, seed));
  return db;
}

}  // namespace ifgen
