#pragma once

#include <string>
#include <vector>

#include "engine/table.h"

namespace ifgen {

/// \brief A second domain workload: a flight-delay analysis session in the
/// style the paper's introduction motivates (an analyst iterating on
/// group-by aggregations in a notebook). Exercises GROUP BY, aggregates,
/// string-equality predicates, and an optional HAVING-like delay filter.
std::vector<std::string> FlightsLog();

/// Matching database (flights table, see MakeFlightsTable).
Database MakeFlightsDatabase(size_t rows = 2000, uint64_t seed = 99);

}  // namespace ifgen
