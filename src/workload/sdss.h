#pragma once

#include <string>
#include <vector>

#include "engine/table.h"

namespace ifgen {

/// \brief The paper's experimental workload (Listing 1): 10 queries derived
/// from the Sloan Digital Sky Survey query log. All queries share the same
/// WHERE-clause structure — four BETWEEN conjuncts over the photometric
/// magnitudes u, g, r, i — and vary in target table (stars/galaxies/
/// quasars), projection (objid vs count(*)), TOP clause presence and value,
/// and the BETWEEN constants. Queries 6-8 share identical WHERE clauses
/// (paper, Figure 6c discussion).
std::vector<std::string> SdssListing1();

/// Queries 6-8 of Listing 1 (0-based [5, 8)), the Figure 6(c) input.
std::vector<std::string> SdssQueries6To8();

/// Synthetic SDSS-like database: stars, galaxies, quasars tables with
/// objid/u/g/r/i/ra/dec/redshift columns (rows per table).
Database MakeSdssDatabase(size_t rows_per_table = 500, uint64_t seed = 2020);

}  // namespace ifgen
