#pragma once

#include <string>
#include <vector>

#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Helpers shared by the execution backends (reference executor,
/// vectorized columnar, SQLite) so that semantics — LIKE matching, output
/// column naming, output schema inference, ORDER BY resolution — are
/// identical across backends by construction, not by coincidence.

/// SQL LIKE with `%` and `_` wildcards, case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti = 0,
               size_t pi = 0);

/// Parses a numeric literal (text containing '.', 'e', or 'E' -> double,
/// else int64). Returns Invalid instead of throwing on malformed text —
/// rule rewrites can hand backends transiently odd fragments.
Result<Value> ParseNumericLiteral(const std::string& text);

/// Parses a non-negative clause count (a TOP/LIMIT value). Rejects
/// anything but plain digits, including `?N` parameter markers.
Result<int64_t> ParseCountLiteral(const std::string& text);

/// Parses a `?N` parameter marker (leading '?' optional — clause values
/// keep it, kParam node values do not) into the 0-based parameter index;
/// Invalid on malformed markers or indices outside [1, num_params].
Result<size_t> ParseParamMarker(const std::string& marker, size_t num_params);

/// True when the expression contains an aggregate function call.
bool ContainsAggregate(const Ast& e);

/// The display name of a SELECT-list item: alias > bare column name > the
/// unparsed fragment > "colN".
std::string OutputColumnName(const Ast& item, size_t index);

/// \brief The output layout of a query: the result schema plus, per output
/// column, the SELECT-list item computing it (nullptr = a `*` column copied
/// straight from the input table at the same position).
struct OutputSpec {
  TableSchema schema;
  std::vector<const Ast*> items;
};

/// Infers the output spec from the SELECT list against the input schema.
/// Type rules (all backends coerce to these): bare columns keep their input
/// type, string literals are strings, count() is int64, every other
/// expression is double. Returned pointers alias `project`'s children —
/// the caller must keep that AST alive.
Result<OutputSpec> BuildOutputSpec(const Ast& project, const TableSchema& input,
                                   bool has_aggregate);

/// \brief A resolved ORDER BY key over the output table.
struct SortKey {
  int col = -1;
  bool desc = false;
};

/// Resolves ORDER BY expressions to output columns by display name; errors
/// when a key is not part of the output (all backends share this rule).
Result<std::vector<SortKey>> ResolveSortKeys(const Ast& order,
                                             const TableSchema& out_schema);

/// Stable-sorts `out` rows by the resolved keys (Value::Compare order).
void SortRows(Table* out, const std::vector<SortKey>& keys);

/// Keeps the first `limit` rows; negative = no limit.
void TruncateRows(Table* out, int64_t limit);

}  // namespace ifgen
