#include "engine/exec_util.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sql/unparser.h"
#include "util/string_util.h"

namespace ifgen {

bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti,
               size_t pi) {
  if (pi == pattern.size()) return ti == text.size();
  if (pattern[pi] == '%') {
    for (size_t skip = 0; ti + skip <= text.size(); ++skip) {
      if (LikeMatch(text, pattern, ti + skip, pi + 1)) return true;
    }
    return false;
  }
  if (ti == text.size()) return false;
  if (pattern[pi] == '_' || pattern[pi] == text[ti]) {
    return LikeMatch(text, pattern, ti + 1, pi + 1);
  }
  return false;
}

Result<Value> ParseNumericLiteral(const std::string& text) {
  try {
    if (text.find_first_of(".eE") != std::string::npos) {
      size_t used = 0;
      double d = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return Value(d);
    }
    size_t used = 0;
    int64_t i = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return Value(i);
  } catch (const std::exception&) {
    return Status::Invalid("malformed numeric literal: " + text);
  }
}

Result<int64_t> ParseCountLiteral(const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::Invalid("TOP/LIMIT value is not a number literal: " + text);
  }
  try {
    return static_cast<int64_t>(std::stoll(text));
  } catch (const std::exception&) {
    return Status::Invalid("TOP/LIMIT value out of range: " + text);
  }
}

Result<size_t> ParseParamMarker(const std::string& marker, size_t num_params) {
  std::string digits =
      !marker.empty() && marker[0] == '?' ? marker.substr(1) : marker;
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
    return Status::Invalid("malformed parameter marker: " + marker);
  }
  size_t idx = 0;
  try {
    idx = static_cast<size_t>(std::stoull(digits));
  } catch (const std::exception&) {
    return Status::Invalid("parameter index out of range: " + marker);
  }
  if (idx == 0 || idx > num_params) {
    return Status::Invalid("parameter index out of range: " + marker);
  }
  return idx - 1;
}

bool ContainsAggregate(const Ast& e) {
  if (e.sym == Symbol::kFuncExpr) {
    static constexpr std::string_view kAggs[] = {"count", "sum", "avg", "min", "max"};
    for (std::string_view a : kAggs) {
      if (e.value == a) return true;
    }
  }
  for (const Ast& c : e.children) {
    if (ContainsAggregate(c)) return true;
  }
  return false;
}

std::string OutputColumnName(const Ast& item, size_t index) {
  if (item.sym == Symbol::kAlias) return item.value;
  if (item.sym == Symbol::kColExpr) return item.value;
  if (item.sym == Symbol::kStar) return "*";
  std::string frag = UnparseFragment(item);
  if (!frag.empty()) return frag;
  return StrFormat("col%zu", index);
}

Result<OutputSpec> BuildOutputSpec(const Ast& project, const TableSchema& input,
                                   bool has_aggregate) {
  OutputSpec spec;
  spec.schema.name = "result";
  const std::vector<Ast>& items = project.children;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].sym == Symbol::kStar && !has_aggregate) {
      for (const ColumnDef& col : input.columns) {
        spec.schema.columns.push_back(col);
        spec.items.push_back(nullptr);  // marker: direct column copy
      }
      continue;
    }
    // Column type: strings stay strings; everything else is double-ish.
    ColumnType t = ColumnType::kDouble;
    const Ast* leaf = &items[i];
    if (leaf->sym == Symbol::kAlias) leaf = &leaf->children[0];
    if (leaf->sym == Symbol::kColExpr) {
      int idx = input.FindColumn(leaf->value);
      if (idx < 0) return Status::Invalid("unknown column: " + leaf->value);
      t = input.columns[static_cast<size_t>(idx)].type;
    } else if (leaf->sym == Symbol::kStrExpr) {
      t = ColumnType::kString;
    } else if (leaf->sym == Symbol::kFuncExpr && leaf->value == "count") {
      t = ColumnType::kInt64;
    }
    spec.schema.columns.push_back({OutputColumnName(items[i], i), t});
    spec.items.push_back(&items[i]);
  }
  return spec;
}

Result<std::vector<SortKey>> ResolveSortKeys(const Ast& order,
                                             const TableSchema& out_schema) {
  std::vector<SortKey> keys;
  for (const Ast& k : order.children) {
    std::string name = OutputColumnName(k.children[0], 0);
    int col = out_schema.FindColumn(name);
    if (col < 0) {
      return Status::Invalid("ORDER BY column not in output: " + name);
    }
    keys.push_back({col, k.value == "desc"});
  }
  return keys;
}

void SortRows(Table* out, const std::vector<SortKey>& keys) {
  if (keys.empty() || out->num_rows() < 2) return;
  std::vector<size_t> idx(out->num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    for (const SortKey& k : keys) {
      int cmp = out->At(a, static_cast<size_t>(k.col))
                    .Compare(out->At(b, static_cast<size_t>(k.col)));
      if (cmp != 0) return k.desc ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  *out = out->Gather(idx);
}

void TruncateRows(Table* out, int64_t limit) {
  if (limit < 0 || static_cast<size_t>(limit) >= out->num_rows()) return;
  std::vector<size_t> idx(static_cast<size_t>(limit));
  std::iota(idx.begin(), idx.end(), 0);
  *out = out->Gather(idx);
}

}  // namespace ifgen
