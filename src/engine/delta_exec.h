#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "engine/backend.h"
#include "engine/table.h"
#include "util/status.h"

namespace ifgen {

/// \brief Delta execution: the engine-side half of the interactive runtime
/// (runtime/interactive.h).
///
/// A widget change w(q, u) -> q' usually perturbs one literal of the current
/// query. PR 3's plan cache already avoids re-*planning* such transitions;
/// this layer avoids re-*executing* them from scratch by (a) classifying the
/// parameter delta between two executions of one query shape and (b) letting
/// capable plans resume from retained per-execution state (the post-WHERE
/// selection vector and the pre-TOP/LIMIT result). Every incremental path is
/// bit-identical to full re-execution by construction — it re-runs the same
/// pipeline over a provably sufficient subset — and tests/interactive_test.cc
/// enforces that differentially on randomized interaction walks.

/// \brief How one executed query state relates to the previous one.
enum class TransitionClass : uint8_t {
  kNoop,         ///< same shape, identical parameters: previous result stands
  kTighten,      ///< same shape; every changed predicate param narrows its
                 ///< predicate, so new rows are a subset of the prior selection
  kLoosen,       ///< same shape; every changed predicate param widens its
                 ///< predicate, so the prior selection survives wholesale
  kLimitOnly,    ///< same shape; only TOP/LIMIT params changed
  kRebind,       ///< same shape; param change with no exploitable structure
  kShapeChange,  ///< different shape (or no previous execution)
};

std::string_view TransitionClassName(TransitionClass c);

/// \brief Per-parameter roles of one query shape, derived once per shape by
/// AnalyzeShape and consulted by ClassifyParamDelta on every transition.
struct ShapeDeltaInfo {
  enum class ParamRole : uint8_t {
    kOpaque,      ///< no monotonicity known (=, <>, LIKE, IN, arithmetic, ...)
    kLowerBound,  ///< increasing the value tightens the predicate (col > ?)
    kUpperBound,  ///< decreasing the value tightens the predicate (col < ?)
    kLimit,       ///< a TOP/LIMIT row cap
  };
  /// One role per parameter of the shape (params[i] has roles[i]).
  std::vector<ParamRole> roles;

  bool has_limit_param() const;
};

/// Derives parameter roles from a parameterized shape. Monotone direction is
/// tracked through AND/OR (both monotone) and flipped under NOT; only direct
/// column-vs-parameter comparisons and BETWEEN bounds get a direction —
/// everything else is conservatively opaque (fallback to full execution).
ShapeDeltaInfo AnalyzeShape(const ParameterizedQuery& pq);

/// Classifies the transition between two parameter vectors of one shape.
/// `prev` and `next` must both match `info.roles` in size (same shape); the
/// classification is conservative: any doubt (opaque role, cross-type change,
/// mixed directions) degrades toward kRebind, never toward an unsound
/// incremental class.
TransitionClass ClassifyParamDelta(const ShapeDeltaInfo& info,
                                   const std::vector<Value>& prev,
                                   const std::vector<Value>& next);

/// Resolves the effective row cap of `params` under `info` (the minimum over
/// all kLimit parameters; -1 when the shape has none). Errors on non-integer
/// or negative caps — callers fall back to full execution.
Result<int64_t> ResolveLimitParams(const ShapeDeltaInfo& info,
                                   const std::vector<Value>& params);

/// \brief A hint telling a delta-capable plan how the prior selection vector
/// relates to the new parameters.
struct DeltaHint {
  enum class Mode : uint8_t {
    kTighten,  ///< new predicate implies the old: filter only prior rows
    kLoosen,   ///< old predicate implies the new: prior rows survive; only the
               ///< complement needs evaluation
  };
  Mode mode = Mode::kTighten;
  /// Sorted base-table row ids that passed the *previous* execution's WHERE
  /// on the same plan. Must outlive the ExecuteDelta call.
  const std::vector<uint32_t>* prior_selection = nullptr;
};

/// \brief The retained state of one execution: everything a later transition
/// of the same shape can resume from.
struct DeltaResult {
  /// The pre-TOP/LIMIT result (post-ORDER BY). A later limit-only transition
  /// re-truncates this table instead of re-executing.
  Table full;
  /// Resolved row cap of this execution (-1 = none); the served result is
  /// `full` truncated to `limit` rows.
  int64_t limit = -1;
  /// Sorted base-table row ids that passed WHERE (all rows when the shape has
  /// no WHERE). Seed for tighten/loosen transitions.
  std::vector<uint32_t> selection;
};

/// \brief Optional capability interface a PreparedQuery may additionally
/// implement (discovered via dynamic_cast). The columnar backend's plans do;
/// the reference and SQLite plans do not — the interactive runtime then
/// falls back to memoized results and full re-execution.
class DeltaCapablePlan {
 public:
  virtual ~DeltaCapablePlan() = default;

  /// Executes with the given bindings, optionally resuming from a prior
  /// selection (`hint`), and returns the retained state. The produced table
  /// must be bit-identical to a hintless execution with the same params —
  /// the hint is a performance contract, never a semantic one.
  virtual Result<DeltaResult> ExecuteDelta(const std::vector<Value>& params,
                                           const DeltaHint* hint) = 0;
};

}  // namespace ifgen
