#include "engine/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ifgen {

namespace {

/// Splits one CSV record honoring double-quote quoting.
Result<std::vector<std::string>> SplitRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV record");
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseField(const std::string& field, ColumnType type) {
  if (field.empty()) return Value();  // empty field = NULL
  switch (type) {
    case ColumnType::kInt64: {
      try {
        return Value(static_cast<int64_t>(std::stoll(field)));
      } catch (...) {
        return Status::ParseError("bad int64 field: " + field);
      }
    }
    case ColumnType::kDouble: {
      try {
        return Value(std::stod(field));
      } catch (...) {
        return Status::ParseError("bad double field: " + field);
      }
    }
    case ColumnType::kString:
      return Value(field);
  }
  return Status::Internal("bad column type");
}

}  // namespace

Result<Table> ParseCsv(const TableSchema& schema, std::string_view text) {
  std::vector<std::string> lines;
  {
    std::string cur;
    for (char ch : text) {
      if (ch == '\n') {
        if (!cur.empty() && cur.back() == '\r') cur.pop_back();
        lines.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += ch;
      }
    }
    if (!cur.empty()) lines.push_back(std::move(cur));
  }
  if (lines.empty()) return Status::ParseError("empty CSV input");

  IFGEN_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitRecord(lines[0]));
  if (header.size() != schema.columns.size()) {
    return Status::ParseError(StrFormat("CSV header arity %zu != schema arity %zu",
                                        header.size(), schema.columns.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(Trim(header[i]), schema.columns[i].name)) {
      return Status::ParseError("CSV header mismatch at column " + header[i]);
    }
  }
  Table table(schema);
  for (size_t li = 1; li < lines.size(); ++li) {
    if (lines[li].empty()) continue;
    IFGEN_ASSIGN_OR_RETURN(std::vector<std::string> fields, SplitRecord(lines[li]));
    if (fields.size() != schema.columns.size()) {
      return Status::ParseError(StrFormat("CSV row %zu arity mismatch", li));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      IFGEN_ASSIGN_OR_RETURN(Value v, ParseField(fields[i], schema.columns[i].type));
      row.push_back(std::move(v));
    }
    IFGEN_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

std::string ToCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += table.schema().columns[c].name;
  }
  out += "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      const Value& v = table.At(r, c);
      if (v.is_null()) continue;
      std::string s = v.ToString();
      if (s.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : s) {
          if (ch == '"') quoted += "\"\"";
          else quoted += ch;
        }
        quoted += "\"";
        s = std::move(quoted);
      }
      out += s;
    }
    out += "\n";
  }
  return out;
}

Result<Table> ReadCsvFile(const TableSchema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(schema, ss.str());
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Invalid("cannot write " + path);
  out << ToCsv(table);
  return Status::OK();
}

}  // namespace ifgen
