#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/plan_cache.h"
#include "obs/metrics.h"
#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief The execution backends a generated interface can run against.
enum class BackendKind : uint8_t {
  kReference = 0,  ///< the row-at-a-time demo executor (reference semantics)
  kColumnar,       ///< vectorized typed-column engine (src/engine/columnar/)
  kSqlite,         ///< SQLite :memory: store (requires IFGEN_WITH_SQLITE)
};

std::string_view BackendKindName(BackendKind k);

/// True when the backend is compiled into this build (kSqlite is gated on
/// the IFGEN_WITH_SQLITE CMake option).
bool BackendAvailable(BackendKind k);

/// All backends compiled into this build, reference first.
std::vector<BackendKind> AvailableBackends();

/// \brief A query split into its shape and its literal bindings.
///
/// Literals in WHERE, TOP, and LIMIT positions are replaced by
/// `Symbol::kParam` placeholders (1-based, rendered `?N` by the unparser);
/// SELECT/GROUP BY/ORDER BY literals stay inline because they determine the
/// output schema. Widget-driven re-executions of one interface state change
/// only literals, so they share a shape — and therefore a compiled plan.
struct ParameterizedQuery {
  Ast shape;
  std::vector<Value> params;  ///< placeholder N binds params[N-1]
  std::string key;            ///< canonical SQL of `shape` (the plan-cache key)
};

Result<ParameterizedQuery> ParameterizeQuery(const Ast& query);

/// Substitutes `params` back into a copy of `shape` (inverse of
/// ParameterizeQuery up to literal spelling); used by tests and by callers
/// that need a concrete AST again.
Result<Ast> BindParams(const Ast& shape, const std::vector<Value>& params);

/// \brief Counters every backend maintains (see ExecutionBackend::stats).
struct BackendStats {
  size_t prepares = 0;         ///< plan compilations (plan-cache misses)
  size_t plan_cache_hits = 0;  ///< Prepare calls answered from the cache
  size_t executions = 0;       ///< Execute/ExecuteSql calls
};

/// \brief A compiled query plan bound to one backend; re-executable with
/// fresh parameter bindings.
class PreparedQuery {
 public:
  PreparedQuery(std::string key, size_t num_params)
      : key_(std::move(key)), num_params_(num_params) {}
  virtual ~PreparedQuery() = default;

  const std::string& key() const { return key_; }
  size_t num_params() const { return num_params_; }

  /// Executes with the given bindings. Thread-safe: implementations either
  /// read immutable plan state only or serialize internally (SQLite).
  virtual Result<Table> Execute(const std::vector<Value>& params) = 0;

 private:
  std::string key_;
  size_t num_params_;
};

/// \brief Abstract query-execution backend: `Prepare(Ast) -> PreparedQuery`,
/// `Execute(params) -> Result<Table>`, plus catalog/stats introspection.
///
/// The base class owns the per-backend plan cache, keyed by the canonical
/// SQL of the parameterized shape; subclasses implement `Compile` only.
/// Prepared plans live as long as the backend. All three backends must
/// produce equivalent Tables (same schema names/arity, same multiset of
/// rows — see TablesEquivalent); tests/backend_test.cc enforces this on the
/// flights, SDSS, and synthetic workloads.
class ExecutionBackend {
 public:
  explicit ExecutionBackend(const Database* db) : db_(db) {}
  virtual ~ExecutionBackend() = default;

  virtual std::string_view name() const = 0;
  virtual BackendKind kind() const = 0;

  const Database& database() const { return *db_; }
  const Catalog& catalog() const { return db_->catalog(); }

  /// Parameterizes `query`, then returns the cached plan for its shape or
  /// compiles one. The pointer stays valid for the backend's lifetime.
  /// `params_out` (optional) receives the extracted literal bindings.
  Result<PreparedQuery*> Prepare(const Ast& query,
                                 std::vector<Value>* params_out = nullptr);

  /// Same, for a caller that already parameterized (the interactive runtime
  /// classifies transitions on the shape first) — skips the redundant
  /// ParameterizeQuery + canonical-SQL unparse on the interaction hot path.
  Result<PreparedQuery*> PrepareShape(const ParameterizedQuery& pq);

  /// Prepare + Execute with the query's own literals.
  Result<Table> Execute(const Ast& query);

  /// Parse + Execute.
  Result<Table> ExecuteSql(std::string_view sql);

  BackendStats stats() const;

 protected:
  /// Compiles a parameterized shape into a plan. Called once per shape
  /// (subsequent Prepare calls hit the cache).
  virtual Result<std::unique_ptr<PreparedQuery>> Compile(
      const ParameterizedQuery& pq) = 0;

 private:
  /// Registry handles labeled `{backend=<kind name>}`, resolved on first use
  /// (`kind()` is virtual, so this cannot run in the constructor).
  struct ObsHandles {
    obs::Counter* prepares = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* executions = nullptr;
    obs::Histogram* execute_us = nullptr;
  };
  const ObsHandles& ObsMetrics() const;

  const Database* db_;
  SqlKeyedCache<PreparedQuery> plans_;
  std::atomic<size_t> executions_{0};
  mutable std::once_flag obs_once_;
  mutable ObsHandles obs_;
};

/// Constructs a backend of the given kind over `db` (not owned; must
/// outlive the backend). kSqlite ingests the workload tables into a
/// `:memory:` store and errors when the build lacks IFGEN_WITH_SQLITE.
Result<std::unique_ptr<ExecutionBackend>> CreateBackend(BackendKind kind,
                                                        const Database* db);

// ---------------------------------------------------------------------------
// Result-identity helpers (tests and benches).

/// Rows reordered into a canonical order: lexicographic Value::Compare over
/// all columns, left to right.
Table SortedByAllColumns(const Table& t);

/// OK when the tables have the same column names/arity and the same rows
/// after canonical sorting; numeric cells compare with relative tolerance
/// `eps` (aggregation order may legitimately differ between backends).
Status TablesEquivalent(const Table& a, const Table& b, double eps = 1e-9);

/// Runs every query on every backend kind and checks all results against
/// the first kind's (conventionally the reference executor).
Status VerifyBackendsAgree(const Database& db, const std::vector<std::string>& sqls,
                           const std::vector<BackendKind>& kinds);

}  // namespace ifgen
