#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "engine/exec_util.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

struct QueryClauses {
  const Ast* project = nullptr;
  const Ast* top = nullptr;
  const Ast* from = nullptr;
  const Ast* where = nullptr;
  const Ast* group = nullptr;
  const Ast* order = nullptr;
  const Ast* limit = nullptr;
};

Result<QueryClauses> SplitClauses(const Ast& query) {
  if (query.sym != Symbol::kSelect) {
    return Status::Invalid("executor expects a Select root");
  }
  QueryClauses c;
  for (const Ast& child : query.children) {
    switch (child.sym) {
      case Symbol::kProject:
        c.project = &child;
        break;
      case Symbol::kTop:
        c.top = &child;
        break;
      case Symbol::kFrom:
        c.from = &child;
        break;
      case Symbol::kWhere:
        c.where = &child;
        break;
      case Symbol::kGroupBy:
        c.group = &child;
        break;
      case Symbol::kOrderBy:
        c.order = &child;
        break;
      case Symbol::kLimit:
        c.limit = &child;
        break;
      default:
        return Status::Invalid("unexpected clause: " + std::string(SymbolName(child.sym)));
    }
  }
  if (c.project == nullptr || c.from == nullptr || c.from->children.empty()) {
    return Status::Invalid("query needs SELECT list and FROM clause");
  }
  return c;
}

/// Row-wise scalar expression evaluator; resolves kParam placeholders
/// against `params` (1-based indices) when executing a prepared shape.
class RowEval {
 public:
  RowEval(const Table& table, const std::vector<Value>& params)
      : table_(table), params_(params) {}

  Result<Value> Eval(const Ast& e, size_t row) const {
    switch (e.sym) {
      case Symbol::kNumExpr:
        return ParseNumericLiteral(e.value);
      case Symbol::kStrExpr:
        return Value(e.value);
      case Symbol::kParam: {
        IFGEN_ASSIGN_OR_RETURN(size_t idx, ParseParamMarker(e.value, params_.size()));
        return params_[idx];
      }
      case Symbol::kColExpr: {
        int idx = table_.schema().FindColumn(e.value);
        if (idx < 0) return Status::Invalid("unknown column: " + e.value);
        return table_.At(row, static_cast<size_t>(idx));
      }
      case Symbol::kBiExpr:
        return EvalBinary(e, row);
      case Symbol::kBetween: {
        IFGEN_ASSIGN_OR_RETURN(Value v, Eval(e.children[0], row));
        IFGEN_ASSIGN_OR_RETURN(Value lo, Eval(e.children[1], row));
        IFGEN_ASSIGN_OR_RETURN(Value hi, Eval(e.children[2], row));
        bool b = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
        return Value(static_cast<int64_t>(b));
      }
      case Symbol::kIn: {
        IFGEN_ASSIGN_OR_RETURN(Value v, Eval(e.children[0], row));
        for (const Ast& item : e.children[1].children) {
          IFGEN_ASSIGN_OR_RETURN(Value iv, Eval(item, row));
          if (v == iv) return Value(static_cast<int64_t>(1));
        }
        return Value(static_cast<int64_t>(0));
      }
      case Symbol::kAnd: {
        for (const Ast& c : e.children) {
          IFGEN_ASSIGN_OR_RETURN(Value v, Eval(c, row));
          if (!Truthy(v)) return Value(static_cast<int64_t>(0));
        }
        return Value(static_cast<int64_t>(1));
      }
      case Symbol::kOr: {
        for (const Ast& c : e.children) {
          IFGEN_ASSIGN_OR_RETURN(Value v, Eval(c, row));
          if (Truthy(v)) return Value(static_cast<int64_t>(1));
        }
        return Value(static_cast<int64_t>(0));
      }
      case Symbol::kNot: {
        IFGEN_ASSIGN_OR_RETURN(Value v, Eval(e.children[0], row));
        return Value(static_cast<int64_t>(!Truthy(v)));
      }
      case Symbol::kAlias:
        return Eval(e.children[0], row);
      default:
        return Status::Unimplemented("cannot evaluate " +
                                     std::string(SymbolName(e.sym)) + " per row");
    }
  }

  static bool Truthy(const Value& v) {
    return v.is_numeric() && v.AsDouble() != 0.0;
  }

 private:
  Result<Value> EvalBinary(const Ast& e, size_t row) const {
    IFGEN_ASSIGN_OR_RETURN(Value a, Eval(e.children[0], row));
    IFGEN_ASSIGN_OR_RETURN(Value b, Eval(e.children[1], row));
    const std::string& op = e.value;
    if (op == "+" || op == "-" || op == "*" || op == "/") {
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::Invalid("arithmetic on non-numeric values");
      }
      double x = a.AsDouble();
      double y = b.AsDouble();
      double r = op == "+" ? x + y : op == "-" ? x - y : op == "*" ? x * y : x / y;
      if (a.is_int() && b.is_int() && op != "/") {
        return Value(static_cast<int64_t>(std::llround(r)));
      }
      return Value(r);
    }
    if (op == "like") {
      if (!a.is_string() || !b.is_string()) {
        return Status::Invalid("LIKE on non-string values");
      }
      return Value(static_cast<int64_t>(LikeMatch(a.AsString(), b.AsString())));
    }
    int cmp = a.Compare(b);
    bool r = false;
    if (op == "=") {
      r = cmp == 0;
    } else if (op == "<>") {
      r = cmp != 0;
    } else if (op == "<") {
      r = cmp < 0;
    } else if (op == "<=") {
      r = cmp <= 0;
    } else if (op == ">") {
      r = cmp > 0;
    } else if (op == ">=") {
      r = cmp >= 0;
    } else {
      return Status::Unimplemented("operator " + op);
    }
    return Value(static_cast<int64_t>(r));
  }

  const Table& table_;
  const std::vector<Value>& params_;
};

Result<Value> EvalAggregate(const Ast& e, const RowEval& ev,
                            const std::vector<size_t>& rows) {
  if (e.sym == Symbol::kFuncExpr) {
    const std::string& fn = e.value;
    if (fn == "count" && (e.children.empty() || e.children[0].sym == Symbol::kStar)) {
      return Value(static_cast<int64_t>(rows.size()));
    }
    if (fn == "count" || fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
      if (e.children.empty()) return Status::Invalid(fn + " needs an argument");
      std::vector<Value> vals;
      vals.reserve(rows.size());
      for (size_t r : rows) {
        IFGEN_ASSIGN_OR_RETURN(Value v, ev.Eval(e.children[0], r));
        if (!v.is_null()) vals.push_back(std::move(v));
      }
      if (fn == "count") return Value(static_cast<int64_t>(vals.size()));
      if (vals.empty()) return Value();
      if (fn == "min" || fn == "max") {
        Value best = vals[0];
        for (const Value& v : vals) {
          int cmp = v.Compare(best);
          if ((fn == "min" && cmp < 0) || (fn == "max" && cmp > 0)) best = v;
        }
        return best;
      }
      double sum = 0;
      for (const Value& v : vals) {
        if (!v.is_numeric()) return Status::Invalid(fn + " on non-numeric value");
        sum += v.AsDouble();
      }
      if (fn == "sum") return Value(sum);
      return Value(sum / static_cast<double>(vals.size()));
    }
    return Status::Unimplemented("function " + fn);
  }
  if (e.sym == Symbol::kAlias) return EvalAggregate(e.children[0], ev, rows);
  if (e.sym == Symbol::kBiExpr && ContainsAggregate(e)) {
    const std::string& op = e.value;
    if (op != "+" && op != "-" && op != "*" && op != "/") {
      // Matches the columnar compiler: only arithmetic combines aggregates.
      return Status::Unimplemented("operator " + op + " over aggregates");
    }
    IFGEN_ASSIGN_OR_RETURN(Value a, EvalAggregate(e.children[0], ev, rows));
    IFGEN_ASSIGN_OR_RETURN(Value b, EvalAggregate(e.children[1], ev, rows));
    if (!a.is_numeric() || !b.is_numeric()) {
      return Status::Invalid("arithmetic on non-numeric aggregate");
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    double r = op == "+" ? x + y : op == "-" ? x - y : op == "*" ? x * y : x / y;
    return Value(r);
  }
  // Non-aggregate expression inside an aggregate query: evaluate on the
  // first row of the group (it must be a grouping key for valid SQL).
  if (rows.empty()) return Value();
  return ev.Eval(e, rows[0]);
}

/// Clause counts (TOP/LIMIT) are either a number or a "?N" parameter.
Result<int64_t> ResolveCount(const std::string& text,
                             const std::vector<Value>& params) {
  if (!text.empty() && text[0] == '?') {
    IFGEN_ASSIGN_OR_RETURN(size_t idx, ParseParamMarker(text, params.size()));
    if (!params[idx].is_int()) {
      return Status::Invalid("TOP/LIMIT parameter must be an integer");
    }
    return params[idx].AsInt();
  }
  return ParseCountLiteral(text);
}

}  // namespace

Result<Table> Executor::Execute(const Ast& query) const {
  return Execute(query, {});
}

Result<Table> Executor::Execute(const Ast& query,
                                const std::vector<Value>& params) const {
  IFGEN_ASSIGN_OR_RETURN(QueryClauses c, SplitClauses(query));
  if (c.from->children.size() != 1) {
    return Status::Unimplemented("single-table FROM only");
  }
  IFGEN_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(c.from->children[0].value));
  RowEval ev(*table, params);

  // Filter.
  std::vector<size_t> rows;
  rows.reserve(table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (c.where != nullptr && !c.where->children.empty()) {
      IFGEN_ASSIGN_OR_RETURN(Value keep, ev.Eval(c.where->children[0], r));
      if (!RowEval::Truthy(keep)) continue;
    }
    rows.push_back(r);
  }

  const std::vector<Ast>& items = c.project->children;
  bool has_agg = false;
  for (const Ast& item : items) has_agg |= ContainsAggregate(item);

  IFGEN_ASSIGN_OR_RETURN(OutputSpec spec,
                         BuildOutputSpec(*c.project, table->schema(), has_agg));
  Table out(spec.schema);

  if (has_agg || c.group != nullptr) {
    // Group rows by the GROUP BY key tuple (empty key = single group).
    std::map<std::vector<std::string>, std::vector<size_t>> groups;
    for (size_t r : rows) {
      std::vector<std::string> key;
      if (c.group != nullptr) {
        for (const Ast& g : c.group->children) {
          IFGEN_ASSIGN_OR_RETURN(Value v, ev.Eval(g, r));
          key.push_back(v.ToString());
        }
      }
      groups[key].push_back(r);
    }
    if (groups.empty() && c.group == nullptr) {
      groups[{}] = {};  // aggregates over an empty input produce one row
    }
    for (const auto& [key, group_rows] : groups) {
      std::vector<Value> row;
      for (const Ast* item : spec.items) {
        if (item == nullptr) {
          return Status::Invalid("SELECT * cannot be combined with aggregates");
        }
        IFGEN_ASSIGN_OR_RETURN(Value v, EvalAggregate(*item, ev, group_rows));
        row.push_back(std::move(v));
      }
      IFGEN_RETURN_NOT_OK(out.AppendRow(std::move(row)));
    }
  } else {
    std::set<std::string> seen;  // for DISTINCT
    const bool distinct = c.project->value == "distinct";
    for (size_t r : rows) {
      std::vector<Value> row;
      for (size_t i = 0; i < spec.items.size(); ++i) {
        if (spec.items[i] == nullptr) {
          row.push_back(table->At(r, row.size()));
        } else {
          IFGEN_ASSIGN_OR_RETURN(Value v, ev.Eval(*spec.items[i], r));
          row.push_back(std::move(v));
        }
      }
      if (distinct) {
        std::string key;
        for (const Value& v : row) key += v.ToString() + "\x01";
        if (!seen.insert(key).second) continue;
      }
      IFGEN_RETURN_NOT_OK(out.AppendRow(std::move(row)));
    }
  }

  // ORDER BY. Resolution is deliberately gated on >1 rows (matching the
  // original executor): a widget state can combine a projection variant
  // with a sticky ORDER BY over a column it no longer outputs, and such a
  // state must keep executing when the result needs no ordering anyway.
  if (c.order != nullptr && out.num_rows() > 1) {
    IFGEN_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                           ResolveSortKeys(*c.order, out.schema()));
    SortRows(&out, keys);
  }

  // TOP / LIMIT.
  int64_t limit = -1;
  if (c.top != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(limit, ResolveCount(c.top->value, params));
  }
  if (c.limit != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(int64_t l, ResolveCount(c.limit->value, params));
    limit = limit < 0 ? l : std::min(limit, l);
  }
  TruncateRows(&out, limit);
  return out;
}

Result<Table> Executor::ExecuteSql(std::string_view sql) const {
  std::string key(sql);
  std::shared_ptr<const Ast> parsed = sql_cache_.Lookup(key);
  if (parsed == nullptr) {
    IFGEN_ASSIGN_OR_RETURN(Ast q, ParseQuery(sql));
    parsed = sql_cache_.Insert(key, std::make_shared<const Ast>(std::move(q)));
  }
  return Execute(*parsed);
}

}  // namespace ifgen
