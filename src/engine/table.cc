#include "engine/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace ifgen {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.columns.size());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::Invalid(StrFormat("row arity %zu != schema arity %zu", row.size(),
                                     columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    switch (schema_.columns[i].type) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        if (!v.is_numeric()) {
          return Status::Invalid("non-numeric value for numeric column " +
                                 schema_.columns[i].name);
        }
        break;
      case ColumnType::kString:
        if (!v.is_string()) {
          return Status::Invalid("non-string value for string column " +
                                 schema_.columns[i].name);
        }
        break;
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(std::move(row[i]));
  }
  return Status::OK();
}

Table Table::Gather(const std::vector<size_t>& row_indices) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(row_indices.size());
    for (size_t r : row_indices) {
      out.columns_[c].push_back(columns_[c][r]);
    }
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.columns[c].name.size();
    for (size_t r = 0; r < std::min(num_rows(), max_rows); ++r) {
      widths[c] = std::max(widths[c], At(r, c).ToString().size());
    }
  }
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    out += PadRight(schema_.columns[c].name, widths[c] + 2);
  }
  out += "\n";
  for (size_t c = 0; c < num_columns(); ++c) {
    out += Repeat("-", widths[c]) + "  ";
  }
  out += "\n";
  for (size_t r = 0; r < std::min(num_rows(), max_rows); ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      out += PadRight(At(r, c).ToString(), widths[c] + 2);
    }
    out += "\n";
  }
  if (num_rows() > max_rows) {
    out += StrFormat("... (%zu rows total)\n", num_rows());
  }
  return out;
}

void Database::AddTable(Table table) {
  catalog_.AddTable(table.schema());
  tables_.push_back(std::move(table));
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  for (const Table& t : tables_) {
    if (EqualsIgnoreCase(t.schema().name, name)) return &t;
  }
  return Status::NotFound("no such table: " + std::string(name));
}

}  // namespace ifgen
