#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "sql/catalog.h"

namespace ifgen {

/// \brief A dynamically-typed SQL value: NULL, int64, double, or string.
class Value {
 public:
  Value() : v_(Null{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  static Value Null_() { return Value(); }

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_)) : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// SQL-style three-valued comparison is simplified to two-valued with
  /// NULLs ordered first; mixed numeric types compare as double.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display rendering ("null", "3", "2.5", "abc").
  std::string ToString() const;

 private:
  struct Null {};
  std::variant<Null, int64_t, double, std::string> v_;
};

}  // namespace ifgen
