#pragma once

#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Executes a parsed query of the supported subset against a Database.
///
/// Pipeline: scan single FROM table -> WHERE filter -> GROUP BY + aggregate
/// (or plain projection) -> ORDER BY -> TOP/LIMIT. Supported aggregates:
/// count(*), count(col), sum, avg, min, max. DISTINCT applies to plain
/// projections.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  Result<Table> Execute(const Ast& query) const;

  /// Convenience: parse + execute.
  Result<Table> ExecuteSql(std::string_view sql) const;

 private:
  const Database* db_;
};

}  // namespace ifgen
