#pragma once

#include "engine/plan_cache.h"
#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Executes a parsed query of the supported subset against a Database.
///
/// Pipeline: scan single FROM table -> WHERE filter -> GROUP BY + aggregate
/// (or plain projection) -> ORDER BY -> TOP/LIMIT. Supported aggregates:
/// count(*), count(col), sum, avg, min, max. DISTINCT applies to plain
/// projections.
///
/// This is the *reference* backend: row-at-a-time Value interpretation,
/// deliberately simple. The vectorized columnar and SQLite backends
/// (engine/backend.h) must match its results on every supported query.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  Result<Table> Execute(const Ast& query) const;

  /// Executes a parameterized shape (Symbol::kParam placeholders, 1-based)
  /// with the given bindings; the backend layer's "rebind, don't re-plan"
  /// path (see ParameterizeQuery in engine/backend.h).
  Result<Table> Execute(const Ast& query, const std::vector<Value>& params) const;

  /// Convenience: parse + execute. Parses each distinct SQL text once —
  /// repeated widget-driven re-executions of the same query hit the
  /// prepared-AST cache instead of re-parsing (counters below). The cache
  /// keys literal-bearing text, so it is capped (flush-on-full); callers
  /// that want literal-independent plan reuse go through ExecutionBackend,
  /// whose cache keys the parameterized shape.
  Result<Table> ExecuteSql(std::string_view sql) const;

  size_t sql_cache_hits() const { return sql_cache_.hits(); }
  size_t sql_cache_misses() const { return sql_cache_.misses(); }

 private:
  /// sql_cache_ capacity: distinct SQL texts kept (bindings make the text
  /// space unbounded; the hot set — one text per reachable widget state a
  /// user toggles between — is far smaller).
  static constexpr size_t kSqlCacheCapacity = 256;

  const Database* db_;
  /// Raw SQL text -> parsed AST (thread-safe, per-executor).
  mutable SqlKeyedCache<const Ast> sql_cache_{kSqlCacheCapacity};
};

}  // namespace ifgen
