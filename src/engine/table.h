#pragma once

#include <string>
#include <vector>

#include "engine/value.h"
#include "sql/catalog.h"
#include "util/status.h"

namespace ifgen {

/// \brief A column-oriented in-memory table.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one row; arity and basic type compatibility are checked.
  Status AppendRow(std::vector<Value> row);

  const Value& At(size_t row, size_t col) const { return columns_[col][row]; }
  const std::vector<Value>& Column(size_t col) const { return columns_[col]; }

  /// Returns a copy containing only `row_indices`, in the given order.
  Table Gather(const std::vector<size_t>& row_indices) const;

  /// ASCII rendering with a header, at most `max_rows` data rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  TableSchema schema_;
  std::vector<std::vector<Value>> columns_;
};

/// \brief A named collection of tables plus their catalog.
class Database {
 public:
  void AddTable(Table table);
  Result<const Table*> GetTable(std::string_view name) const;
  const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
  std::vector<Table> tables_;
};

}  // namespace ifgen
