#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"

namespace ifgen {

/// \brief A cheap, non-owning scalar used during vectorized evaluation:
/// numerics are unboxed doubles, strings are pointers into column storage.
/// Mirrors Value semantics (Compare, ToString keys) without allocation.
struct Scalar {
  enum class Tag : uint8_t { kNull, kNum, kStr };
  Tag tag = Tag::kNull;
  double num = 0.0;             ///< comparison domain (ints widened)
  bool is_int = false;          ///< numeric was an integer (for Value round-trip)
  int64_t ival = 0;             ///< exact payload when is_int
  const std::string* str = nullptr;

  static Scalar Null() { return {}; }
  static Scalar Int(int64_t v) {
    Scalar s;
    s.tag = Tag::kNum;
    s.num = static_cast<double>(v);
    s.is_int = true;
    s.ival = v;
    return s;
  }
  static Scalar Double(double v) {
    Scalar s;
    s.tag = Tag::kNum;
    s.num = v;
    return s;
  }
  static Scalar Str(const std::string* v) {
    Scalar s;
    s.tag = Tag::kStr;
    s.str = v;
    return s;
  }

  bool is_null() const { return tag == Tag::kNull; }
  bool is_num() const { return tag == Tag::kNum; }
  bool is_str() const { return tag == Tag::kStr; }

  /// Same total order as Value::Compare: NULLs first, numerics as double,
  /// strings lexicographic, numbers before strings.
  int Compare(const Scalar& o) const;

  bool Truthy() const { return is_num() && num != 0.0; }

  /// Boxes back into a Value matching what the reference executor produces.
  Value ToValue() const;

  /// Appends the Value::ToString rendering (group/distinct key building).
  void AppendKey(std::string* out) const;
};

/// \brief One typed column batch: parallel arrays decoded once from the
/// row-store Table so that scans touch unboxed memory.
///
/// Numeric columns keep a double array (the comparison domain of Value) plus
/// the original int64 payloads for exact Value round-trips; `flags` packs
/// null (bit 0) and was-int (bit 1) per row.
struct ColumnVector {
  ColumnType type = ColumnType::kDouble;
  std::vector<double> nums;
  std::vector<int64_t> ints;
  std::vector<std::string> strings;
  std::vector<uint8_t> flags;

  static constexpr uint8_t kNullBit = 1;
  static constexpr uint8_t kIntBit = 2;

  size_t size() const { return flags.size(); }
  bool IsNull(size_t row) const { return (flags[row] & kNullBit) != 0; }

  Scalar Get(size_t row) const {
    uint8_t f = flags[row];
    if ((f & kNullBit) != 0) return Scalar::Null();
    if (type == ColumnType::kString) return Scalar::Str(&strings[row]);
    if ((f & kIntBit) != 0) return Scalar::Int(ints[row]);
    return Scalar::Double(nums[row]);
  }

  static ColumnVector Decode(const Table& t, size_t col);
};

/// \brief A table decoded into typed column batches (built once per backend).
struct ColumnarTable {
  TableSchema schema;
  std::vector<ColumnVector> columns;
  size_t num_rows = 0;

  static ColumnarTable Decode(const Table& t);
};

}  // namespace ifgen
