#pragma once

#include <memory>

#include "engine/backend.h"

namespace ifgen {

/// \brief Builds the vectorized columnar backend over `db` (not owned).
///
/// Construction decodes every table into typed column batches
/// (engine/columnar/column_store.h). `Prepare` compiles a parameterized
/// query shape into a physical plan with pre-resolved column indices;
/// `Execute` evaluates it without Value boxing on the hot paths:
///  - WHERE runs over a selection vector, conjunct by conjunct, so later
///    predicates only touch surviving rows (short-circuiting), with tight
///    numeric loops for column-vs-literal comparisons and BETWEEN;
///  - GROUP BY is a hash aggregate (key -> row set) instead of the
///    reference executor's ordered map of stringified key tuples.
/// Results are equivalent to the reference executor's (ctest-enforced).
Result<std::unique_ptr<ExecutionBackend>> MakeColumnarBackend(const Database* db);

}  // namespace ifgen
