#include "engine/columnar/column_store.h"

#include <cmath>

#include "util/string_util.h"

namespace ifgen {

int Scalar::Compare(const Scalar& o) const {
  if (is_null() || o.is_null()) {
    if (is_null() && o.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_num() && o.is_num()) {
    if (num < o.num) return -1;
    if (num > o.num) return 1;
    return 0;
  }
  if (is_str() && o.is_str()) return str->compare(*o.str);
  return is_num() ? -1 : 1;
}

Value Scalar::ToValue() const {
  if (is_null()) return Value();
  if (is_str()) return Value(*str);
  if (is_int) return Value(ival);
  return Value(num);
}

void Scalar::AppendKey(std::string* out) const {
  // Must render exactly like Value::ToString so the columnar grouping keys
  // match the reference executor's.
  if (is_null()) {
    *out += "null";
  } else if (is_str()) {
    *out += *str;
  } else if (is_int) {
    *out += std::to_string(ival);
  } else if (std::floor(num) == num && std::abs(num) < 1e15) {
    *out += StrFormat("%.1f", num);
  } else {
    *out += StrFormat("%.4g", num);
  }
}

ColumnVector ColumnVector::Decode(const Table& t, size_t col) {
  ColumnVector out;
  out.type = t.schema().columns[col].type;
  const size_t n = t.num_rows();
  out.flags.resize(n, 0);
  if (out.type == ColumnType::kString) {
    out.strings.resize(n);
  } else {
    out.nums.resize(n, 0.0);
    out.ints.resize(n, 0);
  }
  for (size_t r = 0; r < n; ++r) {
    const Value& v = t.At(r, col);
    if (v.is_null()) {
      out.flags[r] = kNullBit;
      continue;
    }
    if (out.type == ColumnType::kString) {
      out.strings[r] = v.AsString();
      continue;
    }
    // Numeric columns may hold ints and doubles interchangeably (the
    // row-store allows any numeric Value in either column type).
    out.nums[r] = v.AsDouble();
    if (v.is_int()) {
      out.ints[r] = v.AsInt();
      out.flags[r] |= kIntBit;
    }
  }
  return out;
}

ColumnarTable ColumnarTable::Decode(const Table& t) {
  ColumnarTable out;
  out.schema = t.schema();
  out.num_rows = t.num_rows();
  out.columns.reserve(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    out.columns.push_back(ColumnVector::Decode(t, c));
  }
  return out;
}

}  // namespace ifgen
