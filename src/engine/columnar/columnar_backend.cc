#include "engine/columnar/columnar_backend.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "engine/columnar/column_store.h"
#include "engine/delta_exec.h"
#include "engine/exec_util.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

// ---------------------------------------------------------------------------
// Compiled expressions.

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct CExpr {
  enum class Op : uint8_t {
    kColumn,   // col
    kConst,    // constant (typed Value)
    kParam,    // param (0-based index into the execution bindings)
    kArith,    // arith over children[0], children[1]
    kCmp,      // cmp over children[0], children[1]
    kLike,     // children[0] like children[1]
    kBetween,  // children[0] between children[1] and children[2]
    kIn,       // children[0] in children[1..]
    kAnd,
    kOr,
    kNot,
  };
  Op op = Op::kConst;
  int col = -1;
  Value constant;
  size_t param = 0;
  char arith = 0;
  CmpOp cmp = CmpOp::kEq;
  std::vector<CExpr> children;
};

/// Per-execution evaluation context. Type errors inside the tight loops are
/// latched here instead of threading Result through every scalar.
struct EvalCtx {
  const ColumnarTable& table;
  const std::vector<Value>& params;
  Status error = Status::OK();

  void Fail(const std::string& msg) {
    if (error.ok()) error = Status::Invalid(msg);
  }
};

Scalar ValueToScalar(const Value& v) {
  if (v.is_null()) return Scalar::Null();
  if (v.is_int()) return Scalar::Int(v.AsInt());
  if (v.is_double()) return Scalar::Double(v.AsDouble());
  return Scalar::Str(&v.AsString());
}

bool CmpHolds(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Scalar EvalScalar(const CExpr& e, size_t row, EvalCtx* ctx) {
  switch (e.op) {
    case CExpr::Op::kColumn:
      return ctx->table.columns[static_cast<size_t>(e.col)].Get(row);
    case CExpr::Op::kConst:
      return ValueToScalar(e.constant);
    case CExpr::Op::kParam:
      return ValueToScalar(ctx->params[e.param]);
    case CExpr::Op::kArith: {
      Scalar a = EvalScalar(e.children[0], row, ctx);
      Scalar b = EvalScalar(e.children[1], row, ctx);
      if (!a.is_num() || !b.is_num()) {
        ctx->Fail("arithmetic on non-numeric values");
        return Scalar::Null();
      }
      double x = a.num;
      double y = b.num;
      double r = e.arith == '+'   ? x + y
                 : e.arith == '-' ? x - y
                 : e.arith == '*' ? x * y
                                  : x / y;
      if (a.is_int && b.is_int && e.arith != '/') {
        return Scalar::Int(static_cast<int64_t>(std::llround(r)));
      }
      return Scalar::Double(r);
    }
    case CExpr::Op::kCmp: {
      Scalar a = EvalScalar(e.children[0], row, ctx);
      Scalar b = EvalScalar(e.children[1], row, ctx);
      return Scalar::Int(CmpHolds(e.cmp, a.Compare(b)) ? 1 : 0);
    }
    case CExpr::Op::kLike: {
      Scalar a = EvalScalar(e.children[0], row, ctx);
      Scalar b = EvalScalar(e.children[1], row, ctx);
      if (!a.is_str() || !b.is_str()) {
        ctx->Fail("LIKE on non-string values");
        return Scalar::Null();
      }
      return Scalar::Int(LikeMatch(*a.str, *b.str) ? 1 : 0);
    }
    case CExpr::Op::kBetween: {
      Scalar v = EvalScalar(e.children[0], row, ctx);
      Scalar lo = EvalScalar(e.children[1], row, ctx);
      Scalar hi = EvalScalar(e.children[2], row, ctx);
      return Scalar::Int(v.Compare(lo) >= 0 && v.Compare(hi) <= 0 ? 1 : 0);
    }
    case CExpr::Op::kIn: {
      Scalar v = EvalScalar(e.children[0], row, ctx);
      for (size_t i = 1; i < e.children.size(); ++i) {
        Scalar item = EvalScalar(e.children[i], row, ctx);
        if (v.Compare(item) == 0) return Scalar::Int(1);
      }
      return Scalar::Int(0);
    }
    case CExpr::Op::kAnd: {
      for (const CExpr& c : e.children) {
        if (!EvalScalar(c, row, ctx).Truthy()) return Scalar::Int(0);
      }
      return Scalar::Int(1);
    }
    case CExpr::Op::kOr: {
      for (const CExpr& c : e.children) {
        if (EvalScalar(c, row, ctx).Truthy()) return Scalar::Int(1);
      }
      return Scalar::Int(0);
    }
    case CExpr::Op::kNot:
      return Scalar::Int(EvalScalar(e.children[0], row, ctx).Truthy() ? 0 : 1);
  }
  return Scalar::Null();
}

/// True when the expression always evaluates to a numeric constant for the
/// whole execution (literal or numeric parameter binding).
bool ConstNumeric(const CExpr& e, const std::vector<Value>& params, double* out) {
  const Value* v = nullptr;
  if (e.op == CExpr::Op::kConst) v = &e.constant;
  if (e.op == CExpr::Op::kParam) v = &params[e.param];
  if (v == nullptr || !v->is_numeric()) return false;
  *out = v->AsDouble();
  return true;
}

/// Narrows `sel` to rows satisfying the predicate. AND applies conjuncts
/// sequentially (short-circuit: later conjuncts see only survivors); the
/// column-vs-constant comparison and BETWEEN fast paths run unboxed over
/// the numeric batch.
void FilterRows(const CExpr& pred, EvalCtx* ctx, std::vector<uint32_t>* sel) {
  switch (pred.op) {
    case CExpr::Op::kAnd: {
      for (const CExpr& c : pred.children) {
        FilterRows(c, ctx, sel);
        if (sel->empty() || !ctx->error.ok()) return;
      }
      return;
    }
    case CExpr::Op::kOr: {
      std::vector<uint8_t> keep(sel->size(), 0);
      for (const CExpr& c : pred.children) {
        std::vector<uint32_t> branch = *sel;
        FilterRows(c, ctx, &branch);
        if (!ctx->error.ok()) return;
        // Mark survivors by position in the incoming selection.
        size_t bi = 0;
        for (size_t i = 0; i < sel->size() && bi < branch.size(); ++i) {
          if ((*sel)[i] == branch[bi]) {
            keep[i] = 1;
            ++bi;
          }
        }
      }
      std::vector<uint32_t> out;
      out.reserve(sel->size());
      for (size_t i = 0; i < sel->size(); ++i) {
        if (keep[i]) out.push_back((*sel)[i]);
      }
      *sel = std::move(out);
      return;
    }
    case CExpr::Op::kNot: {
      std::vector<uint32_t> branch = *sel;
      FilterRows(pred.children[0], ctx, &branch);
      if (!ctx->error.ok()) return;
      std::vector<uint32_t> out;
      out.reserve(sel->size());
      size_t bi = 0;
      for (uint32_t r : *sel) {
        if (bi < branch.size() && branch[bi] == r) {
          ++bi;  // child kept it -> NOT drops it
        } else {
          out.push_back(r);
        }
      }
      *sel = std::move(out);
      return;
    }
    case CExpr::Op::kCmp: {
      // Fast path: numeric column vs numeric constant/parameter.
      const CExpr& lhs = pred.children[0];
      double rhs_num = 0.0;
      if (lhs.op == CExpr::Op::kColumn &&
          ConstNumeric(pred.children[1], ctx->params, &rhs_num)) {
        const ColumnVector& col = ctx->table.columns[static_cast<size_t>(lhs.col)];
        if (col.type != ColumnType::kString) {
          std::vector<uint32_t> out;
          out.reserve(sel->size());
          for (uint32_t r : *sel) {
            if (col.IsNull(r)) {
              // NULLs order first (Value::Compare): null < any number.
              if (CmpHolds(pred.cmp, -1)) out.push_back(r);
              continue;
            }
            double v = col.nums[r];
            int cmp = v < rhs_num ? -1 : v > rhs_num ? 1 : 0;
            if (CmpHolds(pred.cmp, cmp)) out.push_back(r);
          }
          *sel = std::move(out);
          return;
        }
      }
      break;  // generic path below
    }
    case CExpr::Op::kBetween: {
      const CExpr& lhs = pred.children[0];
      double lo = 0.0;
      double hi = 0.0;
      if (lhs.op == CExpr::Op::kColumn &&
          ConstNumeric(pred.children[1], ctx->params, &lo) &&
          ConstNumeric(pred.children[2], ctx->params, &hi)) {
        const ColumnVector& col = ctx->table.columns[static_cast<size_t>(lhs.col)];
        if (col.type != ColumnType::kString) {
          std::vector<uint32_t> out;
          out.reserve(sel->size());
          for (uint32_t r : *sel) {
            if (col.IsNull(r)) continue;  // null >= lo is false (nulls first)
            double v = col.nums[r];
            if (v >= lo && v <= hi) out.push_back(r);
          }
          *sel = std::move(out);
          return;
        }
      }
      break;
    }
    default:
      break;
  }
  // Generic row-wise truthiness.
  std::vector<uint32_t> out;
  out.reserve(sel->size());
  for (uint32_t r : *sel) {
    if (EvalScalar(pred, r, ctx).Truthy()) out.push_back(r);
    if (!ctx->error.ok()) return;
  }
  *sel = std::move(out);
}

// ---------------------------------------------------------------------------
// Compiled SELECT-list items (aggregate-aware).

struct CItem {
  enum class Kind : uint8_t {
    kExpr,      // plain expression: first row of the group (or per row)
    kAgg,       // aggregate function over the group
    kArith,     // arithmetic over aggregate sub-items
  };
  enum class AggFn : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };
  Kind kind = Kind::kExpr;
  CExpr expr;                  // kExpr / kAgg argument
  AggFn fn = AggFn::kCountStar;
  char arith = 0;
  std::vector<CItem> children;  // kArith operands
};

Scalar EvalAggItem(const CItem& item, const std::vector<uint32_t>& rows,
                   EvalCtx* ctx) {
  switch (item.kind) {
    case CItem::Kind::kExpr:
      if (rows.empty()) return Scalar::Null();
      return EvalScalar(item.expr, rows[0], ctx);
    case CItem::Kind::kAgg: {
      if (item.fn == CItem::AggFn::kCountStar) {
        return Scalar::Int(static_cast<int64_t>(rows.size()));
      }
      size_t count = 0;
      double sum = 0.0;
      bool numeric_ok = true;
      Scalar best = Scalar::Null();
      for (uint32_t r : rows) {
        Scalar v = EvalScalar(item.expr, r, ctx);
        if (v.is_null()) continue;
        ++count;
        if (item.fn == CItem::AggFn::kMin || item.fn == CItem::AggFn::kMax) {
          if (best.is_null()) {
            best = v;
          } else {
            int cmp = v.Compare(best);
            if ((item.fn == CItem::AggFn::kMin && cmp < 0) ||
                (item.fn == CItem::AggFn::kMax && cmp > 0)) {
              best = v;
            }
          }
        } else if (item.fn != CItem::AggFn::kCount) {
          if (!v.is_num()) {
            numeric_ok = false;
            break;
          }
          sum += v.num;
        }
      }
      if (!numeric_ok) {
        ctx->Fail("aggregate on non-numeric value");
        return Scalar::Null();
      }
      switch (item.fn) {
        case CItem::AggFn::kCount:
          return Scalar::Int(static_cast<int64_t>(count));
        case CItem::AggFn::kMin:
        case CItem::AggFn::kMax:
          return best;
        case CItem::AggFn::kSum:
          return count == 0 ? Scalar::Null() : Scalar::Double(sum);
        case CItem::AggFn::kAvg:
          return count == 0 ? Scalar::Null()
                            : Scalar::Double(sum / static_cast<double>(count));
        case CItem::AggFn::kCountStar:
          break;  // handled above
      }
      return Scalar::Null();
    }
    case CItem::Kind::kArith: {
      Scalar a = EvalAggItem(item.children[0], rows, ctx);
      Scalar b = EvalAggItem(item.children[1], rows, ctx);
      if (!a.is_num() || !b.is_num()) {
        ctx->Fail("arithmetic on non-numeric aggregate");
        return Scalar::Null();
      }
      double x = a.num;
      double y = b.num;
      double r = item.arith == '+'   ? x + y
                 : item.arith == '-' ? x - y
                 : item.arith == '*' ? x * y
                                     : x / y;
      return Scalar::Double(r);
    }
  }
  return Scalar::Null();
}

// ---------------------------------------------------------------------------
// Compilation.

struct CCount {
  int64_t fixed = -1;  // -1 = absent
  int param = -1;      // >= 0: 0-based parameter index overrides `fixed`
};

class ColumnarPlan;

Result<CExpr> CompileExpr(const Ast& e, const TableSchema& schema,
                          size_t num_params) {
  CExpr out;
  switch (e.sym) {
    case Symbol::kNumExpr: {
      out.op = CExpr::Op::kConst;
      IFGEN_ASSIGN_OR_RETURN(out.constant, ParseNumericLiteral(e.value));
      return out;
    }
    case Symbol::kStrExpr:
      out.op = CExpr::Op::kConst;
      out.constant = Value(e.value);
      return out;
    case Symbol::kParam: {
      IFGEN_ASSIGN_OR_RETURN(out.param, ParseParamMarker(e.value, num_params));
      out.op = CExpr::Op::kParam;
      return out;
    }
    case Symbol::kColExpr: {
      int idx = schema.FindColumn(e.value);
      if (idx < 0) return Status::Invalid("unknown column: " + e.value);
      out.op = CExpr::Op::kColumn;
      out.col = idx;
      return out;
    }
    case Symbol::kAlias:
      return CompileExpr(e.children[0], schema, num_params);
    case Symbol::kBiExpr: {
      const std::string& op = e.value;
      if (op == "+" || op == "-" || op == "*" || op == "/") {
        out.op = CExpr::Op::kArith;
        out.arith = op[0];
      } else if (op == "like") {
        out.op = CExpr::Op::kLike;
      } else {
        out.op = CExpr::Op::kCmp;
        if (op == "=") {
          out.cmp = CmpOp::kEq;
        } else if (op == "<>") {
          out.cmp = CmpOp::kNe;
        } else if (op == "<") {
          out.cmp = CmpOp::kLt;
        } else if (op == "<=") {
          out.cmp = CmpOp::kLe;
        } else if (op == ">") {
          out.cmp = CmpOp::kGt;
        } else if (op == ">=") {
          out.cmp = CmpOp::kGe;
        } else {
          return Status::Unimplemented("operator " + op);
        }
      }
      for (const Ast& c : e.children) {
        IFGEN_ASSIGN_OR_RETURN(CExpr cc, CompileExpr(c, schema, num_params));
        out.children.push_back(std::move(cc));
      }
      if (out.children.size() != 2) {
        return Status::Invalid("binary operator needs two operands");
      }
      return out;
    }
    case Symbol::kBetween: {
      out.op = CExpr::Op::kBetween;
      for (const Ast& c : e.children) {
        IFGEN_ASSIGN_OR_RETURN(CExpr cc, CompileExpr(c, schema, num_params));
        out.children.push_back(std::move(cc));
      }
      if (out.children.size() != 3) return Status::Invalid("BETWEEN needs 3 operands");
      return out;
    }
    case Symbol::kIn: {
      out.op = CExpr::Op::kIn;
      IFGEN_ASSIGN_OR_RETURN(CExpr head,
                             CompileExpr(e.children[0], schema, num_params));
      out.children.push_back(std::move(head));
      for (const Ast& item : e.children[1].children) {
        IFGEN_ASSIGN_OR_RETURN(CExpr cc, CompileExpr(item, schema, num_params));
        out.children.push_back(std::move(cc));
      }
      return out;
    }
    case Symbol::kAnd:
    case Symbol::kOr:
    case Symbol::kNot: {
      out.op = e.sym == Symbol::kAnd  ? CExpr::Op::kAnd
               : e.sym == Symbol::kOr ? CExpr::Op::kOr
                                      : CExpr::Op::kNot;
      for (const Ast& c : e.children) {
        IFGEN_ASSIGN_OR_RETURN(CExpr cc, CompileExpr(c, schema, num_params));
        out.children.push_back(std::move(cc));
      }
      return out;
    }
    default:
      return Status::Unimplemented("cannot evaluate " +
                                   std::string(SymbolName(e.sym)) + " per row");
  }
}

Result<CItem> CompileItem(const Ast& e, const TableSchema& schema,
                          size_t num_params) {
  if (e.sym == Symbol::kAlias) return CompileItem(e.children[0], schema, num_params);
  if (e.sym == Symbol::kFuncExpr) {
    const std::string& fn = e.value;
    CItem out;
    out.kind = CItem::Kind::kAgg;
    if (fn == "count" && (e.children.empty() || e.children[0].sym == Symbol::kStar)) {
      out.fn = CItem::AggFn::kCountStar;
      return out;
    }
    if (fn == "count" || fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
      if (e.children.empty()) return Status::Invalid(fn + " needs an argument");
      out.fn = fn == "count" ? CItem::AggFn::kCount
               : fn == "sum" ? CItem::AggFn::kSum
               : fn == "avg" ? CItem::AggFn::kAvg
               : fn == "min" ? CItem::AggFn::kMin
                             : CItem::AggFn::kMax;
      IFGEN_ASSIGN_OR_RETURN(out.expr,
                             CompileExpr(e.children[0], schema, num_params));
      return out;
    }
    return Status::Unimplemented("function " + fn);
  }
  if (e.sym == Symbol::kBiExpr && ContainsAggregate(e)) {
    CItem out;
    out.kind = CItem::Kind::kArith;
    out.arith = e.value.empty() ? '+' : e.value[0];
    if (out.arith != '+' && out.arith != '-' && out.arith != '*' &&
        out.arith != '/') {
      return Status::Unimplemented("operator " + e.value + " over aggregates");
    }
    for (const Ast& c : e.children) {
      IFGEN_ASSIGN_OR_RETURN(CItem cc, CompileItem(c, schema, num_params));
      out.children.push_back(std::move(cc));
    }
    if (out.children.size() != 2) {
      return Status::Invalid("binary operator needs two operands");
    }
    return out;
  }
  CItem out;
  out.kind = CItem::Kind::kExpr;
  IFGEN_ASSIGN_OR_RETURN(out.expr, CompileExpr(e, schema, num_params));
  return out;
}

// ---------------------------------------------------------------------------
// The compiled plan.

class ColumnarPlan : public PreparedQuery, public DeltaCapablePlan {
 public:
  ColumnarPlan(std::string key, size_t num_params)
      : PreparedQuery(std::move(key), num_params) {}

  Result<Table> Execute(const std::vector<Value>& params) override {
    IFGEN_ASSIGN_OR_RETURN(DeltaResult dr, ExecuteDelta(params, nullptr));
    TruncateRows(&dr.full, dr.limit);
    return std::move(dr.full);
  }

  /// The full pipeline with an optional selection seed. A tighten hint
  /// re-runs WHERE over the prior survivors only; a loosen hint keeps the
  /// prior survivors wholesale and evaluates WHERE over their complement.
  /// Everything downstream of the filter (projection/aggregation, ORDER BY,
  /// limit resolution) is the identical code path in all three modes, so
  /// results are bit-identical by construction.
  Result<DeltaResult> ExecuteDelta(const std::vector<Value>& params,
                                   const DeltaHint* hint) override {
    if (params.size() != num_params()) {
      return Status::Invalid("expected " + std::to_string(num_params()) +
                             " parameters, got " + std::to_string(params.size()));
    }
    EvalCtx ctx{*table, params, Status::OK()};

    DeltaResult dr;
    std::vector<uint32_t>& sel = dr.selection;
    if (hint != nullptr && hint->prior_selection != nullptr && has_filter) {
      const std::vector<uint32_t>& prior = *hint->prior_selection;
      if (hint->mode == DeltaHint::Mode::kTighten) {
        sel = prior;
        FilterRows(filter, &ctx, &sel);
      } else {
        // Complement of the prior selection, in base-row order.
        std::vector<uint32_t> rest;
        rest.reserve(table->num_rows - std::min<size_t>(prior.size(), table->num_rows));
        size_t pi = 0;
        for (uint32_t r = 0; r < static_cast<uint32_t>(table->num_rows); ++r) {
          if (pi < prior.size() && prior[pi] == r) {
            ++pi;
            continue;
          }
          rest.push_back(r);
        }
        FilterRows(filter, &ctx, &rest);
        sel.reserve(prior.size() + rest.size());
        std::merge(prior.begin(), prior.end(), rest.begin(), rest.end(),
                   std::back_inserter(sel));
      }
      IFGEN_RETURN_NOT_OK(ctx.error);
    } else {
      sel.resize(table->num_rows);
      for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
      if (has_filter) {
        FilterRows(filter, &ctx, &sel);
        IFGEN_RETURN_NOT_OK(ctx.error);
      }
    }

    Table out(out_schema);
    if (is_aggregate) {
      IFGEN_RETURN_NOT_OK(ExecuteAggregate(sel, &ctx, &out));
    } else {
      IFGEN_RETURN_NOT_OK(ExecuteProjection(sel, &ctx, &out));
    }

    // ORDER BY keys resolve per execution, and only when there is
    // something to order — mirroring the reference executor, which
    // tolerates a sticky ORDER BY over a non-output column as long as the
    // result has at most one row.
    if (!order_keys.empty() && out.num_rows() > 1) {
      std::vector<SortKey> keys;
      for (const auto& [name, desc] : order_keys) {
        int col = out_schema.FindColumn(name);
        if (col < 0) {
          return Status::Invalid("ORDER BY column not in output: " + name);
        }
        keys.push_back({col, desc});
      }
      SortRows(&out, keys);
    }
    IFGEN_ASSIGN_OR_RETURN(dr.limit, ResolveLimit(params));
    dr.full = std::move(out);
    return dr;
  }

 private:
  Status ExecuteAggregate(const std::vector<uint32_t>& sel, EvalCtx* ctx,
                          Table* out) const {
    // Hash aggregate: length-prefixed ToString key tuple -> group id.
    std::unordered_map<std::string, uint32_t> key_to_group;
    key_to_group.reserve(64);
    std::vector<std::vector<uint32_t>> group_rows;
    std::string key;
    std::string part;
    for (uint32_t r : sel) {
      key.clear();
      for (const CExpr& g : group_exprs) {
        part.clear();
        EvalScalar(g, r, ctx).AppendKey(&part);
        key += std::to_string(part.size());
        key += ':';
        key += part;
      }
      IFGEN_RETURN_NOT_OK(ctx->error);
      auto [it, inserted] =
          key_to_group.emplace(key, static_cast<uint32_t>(group_rows.size()));
      if (inserted) group_rows.emplace_back();
      group_rows[it->second].push_back(r);
    }
    if (group_rows.empty() && group_exprs.empty()) {
      group_rows.emplace_back();  // aggregates over empty input: one row
    }
    for (const std::vector<uint32_t>& rows : group_rows) {
      std::vector<Value> row;
      row.reserve(agg_items.size());
      for (size_t i = 0; i < agg_items.size(); ++i) {
        if (star_copy[i]) {
          return Status::Invalid("SELECT * cannot be combined with aggregates");
        }
        row.push_back(EvalAggItem(agg_items[i], rows, ctx).ToValue());
      }
      IFGEN_RETURN_NOT_OK(ctx->error);
      IFGEN_RETURN_NOT_OK(out->AppendRow(std::move(row)));
    }
    return Status::OK();
  }

  Status ExecuteProjection(const std::vector<uint32_t>& sel, EvalCtx* ctx,
                           Table* out) const {
    std::set<std::string> seen;
    std::string key;
    for (uint32_t r : sel) {
      std::vector<Value> row;
      row.reserve(proj_exprs.size());
      for (size_t i = 0; i < proj_exprs.size(); ++i) {
        if (star_copy[i]) {
          // Mirrors the reference executor: a `*` output column copies the
          // input column at the same output position.
          row.push_back(table->columns[row.size()].Get(r).ToValue());
        } else {
          row.push_back(EvalScalar(proj_exprs[i], r, ctx).ToValue());
        }
      }
      IFGEN_RETURN_NOT_OK(ctx->error);
      if (distinct) {
        key.clear();
        for (const Value& v : row) key += v.ToString() + "\x01";
        if (!seen.insert(key).second) continue;
      }
      IFGEN_RETURN_NOT_OK(out->AppendRow(std::move(row)));
    }
    return Status::OK();
  }

  Result<int64_t> ResolveLimit(const std::vector<Value>& params) const {
    int64_t limit = -1;
    for (const CCount& c : {top, lim}) {
      int64_t v = -1;
      if (c.param >= 0) {
        const Value& p = params[static_cast<size_t>(c.param)];
        if (!p.is_int()) return Status::Invalid("TOP/LIMIT parameter must be an integer");
        v = p.AsInt();
      } else if (c.fixed >= 0) {
        v = c.fixed;
      }
      if (v >= 0) limit = limit < 0 ? v : std::min(limit, v);
    }
    return limit;
  }

 public:
  const ColumnarTable* table = nullptr;
  bool has_filter = false;
  CExpr filter;
  bool is_aggregate = false;
  bool distinct = false;
  std::vector<CExpr> group_exprs;
  /// Parallel to the output columns; star_copy[i] marks direct column copies.
  std::vector<uint8_t> star_copy;
  std::vector<CExpr> proj_exprs;   // non-aggregate path
  std::vector<CItem> agg_items;    // aggregate path
  TableSchema out_schema;
  /// ORDER BY (output column name, desc); resolved lazily per execution.
  std::vector<std::pair<std::string, bool>> order_keys;
  CCount top;
  CCount lim;
};

Result<CCount> CompileCount(const std::string& text, size_t num_params) {
  CCount out;
  if (!text.empty() && text[0] == '?') {
    IFGEN_ASSIGN_OR_RETURN(size_t idx, ParseParamMarker(text, num_params));
    out.param = static_cast<int>(idx);
    return out;
  }
  IFGEN_ASSIGN_OR_RETURN(out.fixed, ParseCountLiteral(text));
  return out;
}

// ---------------------------------------------------------------------------
// The backend.

class ColumnarBackend : public ExecutionBackend {
 public:
  explicit ColumnarBackend(const Database* db) : ExecutionBackend(db) {
    for (const TableSchema& schema : db->catalog().tables()) {
      auto t = db->GetTable(schema.name);
      if (t.ok()) {
        tables_.emplace(ToLower(schema.name), ColumnarTable::Decode(**t));
      }
    }
  }

  std::string_view name() const override { return "columnar"; }
  BackendKind kind() const override { return BackendKind::kColumnar; }

 protected:
  Result<std::unique_ptr<PreparedQuery>> Compile(
      const ParameterizedQuery& pq) override {
    auto plan = std::make_unique<ColumnarPlan>(pq.key, pq.params.size());
    // pq outlives this call; everything below compiles into plan-owned
    // structures, so the shape itself is not retained.
    const Ast& query = pq.shape;

    const Ast* project = nullptr;
    const Ast* from = nullptr;
    const Ast* where = nullptr;
    const Ast* group = nullptr;
    const Ast* order = nullptr;
    for (const Ast& c : query.children) {
      switch (c.sym) {
        case Symbol::kProject:
          project = &c;
          break;
        case Symbol::kTop: {
          IFGEN_ASSIGN_OR_RETURN(plan->top, CompileCount(c.value, pq.params.size()));
          break;
        }
        case Symbol::kFrom:
          from = &c;
          break;
        case Symbol::kWhere:
          where = &c;
          break;
        case Symbol::kGroupBy:
          group = &c;
          break;
        case Symbol::kOrderBy:
          order = &c;
          break;
        case Symbol::kLimit: {
          IFGEN_ASSIGN_OR_RETURN(plan->lim, CompileCount(c.value, pq.params.size()));
          break;
        }
        default:
          return Status::Invalid("unexpected clause: " +
                                 std::string(SymbolName(c.sym)));
      }
    }
    if (project == nullptr || from == nullptr || from->children.empty()) {
      return Status::Invalid("query needs SELECT list and FROM clause");
    }
    if (from->children.size() != 1) {
      return Status::Unimplemented("single-table FROM only");
    }
    auto it = tables_.find(ToLower(from->children[0].value));
    if (it == tables_.end()) {
      return Status::NotFound("no such table: " + from->children[0].value);
    }
    plan->table = &it->second;
    const TableSchema& schema = plan->table->schema;

    if (where != nullptr && !where->children.empty()) {
      plan->has_filter = true;
      IFGEN_ASSIGN_OR_RETURN(plan->filter, CompileExpr(where->children[0], schema,
                                                       pq.params.size()));
    }

    bool has_agg = false;
    for (const Ast& item : project->children) has_agg |= ContainsAggregate(item);
    plan->is_aggregate = has_agg || group != nullptr;
    plan->distinct = project->value == "distinct";

    IFGEN_ASSIGN_OR_RETURN(OutputSpec spec, BuildOutputSpec(*project, schema, has_agg));
    plan->out_schema = spec.schema;
    for (const Ast* item : spec.items) {
      plan->star_copy.push_back(item == nullptr ? 1 : 0);
      if (plan->is_aggregate) {
        CItem ci;
        if (item != nullptr) {
          IFGEN_ASSIGN_OR_RETURN(ci, CompileItem(*item, schema, pq.params.size()));
        }
        plan->agg_items.push_back(std::move(ci));
      } else {
        CExpr ce;
        if (item != nullptr) {
          IFGEN_ASSIGN_OR_RETURN(ce, CompileExpr(*item, schema, pq.params.size()));
        }
        plan->proj_exprs.push_back(std::move(ce));
      }
    }
    if (group != nullptr) {
      for (const Ast& g : group->children) {
        IFGEN_ASSIGN_OR_RETURN(CExpr ge, CompileExpr(g, schema, pq.params.size()));
        plan->group_exprs.push_back(std::move(ge));
      }
    }
    if (order != nullptr) {
      for (const Ast& k : order->children) {
        plan->order_keys.emplace_back(OutputColumnName(k.children[0], 0),
                                      k.value == "desc");
      }
    }
    return std::unique_ptr<PreparedQuery>(std::move(plan));
  }

 private:
  std::unordered_map<std::string, ColumnarTable> tables_;
};

}  // namespace

Result<std::unique_ptr<ExecutionBackend>> MakeColumnarBackend(const Database* db) {
  return std::unique_ptr<ExecutionBackend>(new ColumnarBackend(db));
}

}  // namespace ifgen
