#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ifgen {

/// \brief A thread-safe cache keyed by SQL text, shared by the execution
/// backends (canonical parameterized SQL -> compiled plan) and by
/// `Executor::ExecuteSql` (raw SQL -> parsed AST).
///
/// `max_entries == 0` (the backend default) means unbounded: there the key
/// space is the set of query *shapes* an interface can express (literals
/// are parameterized away), which is fixed and small once the interface is
/// generated. Callers keying by literal-bearing text (the executor's
/// parse cache) must pass a cap — each distinct binding is a distinct key —
/// and the cache flushes wholesale when full (crude, but the hot pattern
/// is a small set of repeated texts). Insertion is first-writer-wins so
/// concurrent compilations of the same shape converge on one resident plan.
template <typename V>
class SqlKeyedCache {
 public:
  explicit SqlKeyedCache(size_t max_entries = 0) : max_entries_(max_entries) {}
  /// Returns the resident entry or nullptr; counts a hit or a miss.
  std::shared_ptr<V> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Inserts `value` unless another thread got there first; returns the
  /// resident entry either way. When capped and full, the whole cache is
  /// flushed first (bounds memory for literal-bearing keys).
  std::shared_ptr<V> Insert(const std::string& key, std::shared_ptr<V> value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_entries_ != 0 && map_.size() >= max_entries_ &&
        map_.find(key) == map_.end()) {
      map_.clear();
    }
    auto [it, inserted] = map_.emplace(key, std::move(value));
    return it->second;
  }

  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<V>> map_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace ifgen
