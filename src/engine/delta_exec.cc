#include "engine/delta_exec.h"

#include <algorithm>

#include "engine/exec_util.h"

namespace ifgen {

std::string_view TransitionClassName(TransitionClass c) {
  switch (c) {
    case TransitionClass::kNoop:
      return "noop";
    case TransitionClass::kTighten:
      return "tighten";
    case TransitionClass::kLoosen:
      return "loosen";
    case TransitionClass::kLimitOnly:
      return "limit_only";
    case TransitionClass::kRebind:
      return "rebind";
    case TransitionClass::kShapeChange:
      return "shape_change";
  }
  return "?";
}

bool ShapeDeltaInfo::has_limit_param() const {
  for (ParamRole r : roles) {
    if (r == ParamRole::kLimit) return true;
  }
  return false;
}

namespace {

using ParamRole = ShapeDeltaInfo::ParamRole;

bool ContainsParam(const Ast& e) {
  if (e.sym == Symbol::kParam) return true;
  for (const Ast& c : e.children) {
    if (ContainsParam(c)) return true;
  }
  return false;
}

/// 0-based parameter index of a kParam node, or -1 on malformed markers.
int ParamIndexOf(const Ast& e, size_t num_params) {
  auto idx = ParseParamMarker(e.value, num_params);
  return idx.ok() ? static_cast<int>(*idx) : -1;
}

/// Role assignment with duplicate detection: a parameter never legitimately
/// appears twice (each literal occurrence is its own parameter), but if the
/// walk ever touches one twice, it degrades to opaque rather than risk an
/// unsound direction.
struct RoleCtx {
  std::vector<ParamRole>* roles;
  std::vector<uint8_t> seen;

  void Set(int idx, ParamRole role) {
    if (idx < 0 || static_cast<size_t>(idx) >= roles->size()) return;
    size_t i = static_cast<size_t>(idx);
    (*roles)[i] = seen[i] ? ParamRole::kOpaque : role;
    seen[i] = 1;
  }
};

void MarkOpaque(const Ast& e, RoleCtx* ctx) {
  if (e.sym == Symbol::kParam) {
    ctx->Set(ParamIndexOf(e, ctx->roles->size()), ParamRole::kOpaque);
  }
  for (const Ast& c : e.children) MarkOpaque(c, ctx);
}

/// Walks a predicate with polarity tracking: AND/OR are monotone in their
/// operands, NOT flips tighten/loosen. `positive` = an even number of
/// enclosing NOTs.
void AnalyzePredicate(const Ast& e, bool positive, RoleCtx* ctx) {
  switch (e.sym) {
    case Symbol::kAnd:
    case Symbol::kOr:
      for (const Ast& c : e.children) AnalyzePredicate(c, positive, ctx);
      return;
    case Symbol::kNot:
      for (const Ast& c : e.children) AnalyzePredicate(c, !positive, ctx);
      return;
    case Symbol::kBiExpr: {
      const std::string& op = e.value;
      bool is_cmp = op == ">" || op == ">=" || op == "<" || op == "<=";
      if (is_cmp && e.children.size() == 2) {
        const Ast& lhs = e.children[0];
        const Ast& rhs = e.children[1];
        if (rhs.sym == Symbol::kParam && !ContainsParam(lhs)) {
          // col > ?  => the param is a lower bound: raising it tightens.
          bool lower = op == ">" || op == ">=";
          bool tighten_up = positive ? lower : !lower;
          ctx->Set(ParamIndexOf(rhs, ctx->roles->size()),
                   tighten_up ? ParamRole::kLowerBound : ParamRole::kUpperBound);
          return;
        }
        if (lhs.sym == Symbol::kParam && !ContainsParam(rhs)) {
          // ? < col  ≡  col > ?  => lower bound, mirrored operators.
          bool lower = op == "<" || op == "<=";
          bool tighten_up = positive ? lower : !lower;
          ctx->Set(ParamIndexOf(lhs, ctx->roles->size()),
                   tighten_up ? ParamRole::kLowerBound : ParamRole::kUpperBound);
          return;
        }
      }
      // =, <>, LIKE, arithmetic, param-vs-param: no usable monotonicity.
      MarkOpaque(e, ctx);
      return;
    }
    case Symbol::kBetween: {
      if (e.children.size() != 3 || ContainsParam(e.children[0])) {
        MarkOpaque(e, ctx);
        return;
      }
      const Ast& lo = e.children[1];
      const Ast& hi = e.children[2];
      if (lo.sym == Symbol::kParam) {
        ctx->Set(ParamIndexOf(lo, ctx->roles->size()),
                 positive ? ParamRole::kLowerBound : ParamRole::kUpperBound);
      } else {
        MarkOpaque(lo, ctx);
      }
      if (hi.sym == Symbol::kParam) {
        ctx->Set(ParamIndexOf(hi, ctx->roles->size()),
                 positive ? ParamRole::kUpperBound : ParamRole::kLowerBound);
      } else {
        MarkOpaque(hi, ctx);
      }
      return;
    }
    default:
      // IN lists, function calls, bare columns containing params, ...
      MarkOpaque(e, ctx);
      return;
  }
}

/// True when prev -> next is a same-type change usable for direction
/// analysis (numeric stays numeric, string stays string, no NULLs).
bool ComparableChange(const Value& prev, const Value& next) {
  if (prev.is_null() || next.is_null()) return false;
  if (prev.is_numeric() && next.is_numeric()) return true;
  return prev.is_string() && next.is_string();
}

}  // namespace

ShapeDeltaInfo AnalyzeShape(const ParameterizedQuery& pq) {
  ShapeDeltaInfo info;
  info.roles.assign(pq.params.size(), ParamRole::kOpaque);
  RoleCtx ctx{&info.roles, std::vector<uint8_t>(pq.params.size(), 0)};
  for (const Ast& clause : pq.shape.children) {
    switch (clause.sym) {
      case Symbol::kWhere:
        for (const Ast& c : clause.children) {
          AnalyzePredicate(c, /*positive=*/true, &ctx);
        }
        break;
      case Symbol::kTop:
      case Symbol::kLimit: {
        if (!clause.value.empty() && clause.value[0] == '?') {
          auto idx = ParseParamMarker(clause.value, pq.params.size());
          if (idx.ok()) ctx.Set(static_cast<int>(*idx), ParamRole::kLimit);
        }
        break;
      }
      default:
        break;  // SELECT/GROUP BY/ORDER BY never carry params
    }
  }
  return info;
}

TransitionClass ClassifyParamDelta(const ShapeDeltaInfo& info,
                                   const std::vector<Value>& prev,
                                   const std::vector<Value>& next) {
  if (prev.size() != info.roles.size() || next.size() != info.roles.size()) {
    return TransitionClass::kShapeChange;
  }
  bool any_changed = false;
  bool any_non_limit = false;
  bool all_tighten = true;
  bool all_loosen = true;
  for (size_t i = 0; i < info.roles.size(); ++i) {
    const Value& p = prev[i];
    const Value& n = next[i];
    // "Unchanged" is exact: same type class and equal under Compare. A type
    // flip with equal numeric value (1 vs 1.0) still counts as changed — the
    // fingerprints differ — but compares as direction 0, which every class
    // below treats as neutral (the row set cannot move).
    bool same_type = (p.is_null() && n.is_null()) ||
                     (p.is_numeric() && n.is_numeric() && p.is_int() == n.is_int()) ||
                     (p.is_string() && n.is_string());
    if (same_type && (p.is_null() || p.Compare(n) == 0)) continue;
    any_changed = true;
    if (info.roles[i] == ParamRole::kLimit) continue;
    any_non_limit = true;
    if (info.roles[i] == ParamRole::kOpaque || !ComparableChange(p, n)) {
      return TransitionClass::kRebind;
    }
    int dir = n.Compare(p);  // >0: value went up
    if (dir == 0) continue;  // type flip with equal value: neutral
    bool tightens = info.roles[i] == ParamRole::kLowerBound ? dir > 0 : dir < 0;
    if (tightens) {
      all_loosen = false;
    } else {
      all_tighten = false;
    }
  }
  if (!any_changed) return TransitionClass::kNoop;
  if (!any_non_limit) return TransitionClass::kLimitOnly;
  if (all_tighten) return TransitionClass::kTighten;
  if (all_loosen) return TransitionClass::kLoosen;
  return TransitionClass::kRebind;
}

Result<int64_t> ResolveLimitParams(const ShapeDeltaInfo& info,
                                   const std::vector<Value>& params) {
  if (params.size() != info.roles.size()) {
    return Status::Invalid("param count does not match shape info");
  }
  int64_t limit = -1;
  for (size_t i = 0; i < info.roles.size(); ++i) {
    if (info.roles[i] != ParamRole::kLimit) continue;
    if (!params[i].is_int() || params[i].AsInt() < 0) {
      return Status::Invalid("TOP/LIMIT parameter must be a non-negative integer");
    }
    int64_t v = params[i].AsInt();
    limit = limit < 0 ? v : std::min(limit, v);
  }
  return limit;
}

}  // namespace ifgen
