#include "engine/backend.h"

#include <algorithm>
#include <cmath>

#include "engine/columnar/columnar_backend.h"
#include "engine/exec_util.h"
#include "engine/executor.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "util/string_util.h"

#ifdef IFGEN_WITH_SQLITE
#include "engine/sqlite/sqlite_backend.h"
#endif

namespace ifgen {

std::string_view BackendKindName(BackendKind k) {
  switch (k) {
    case BackendKind::kReference:
      return "reference";
    case BackendKind::kColumnar:
      return "columnar";
    case BackendKind::kSqlite:
      return "sqlite";
  }
  return "?";
}

bool BackendAvailable(BackendKind k) {
#ifdef IFGEN_WITH_SQLITE
  (void)k;
  return true;
#else
  return k != BackendKind::kSqlite;
#endif
}

std::vector<BackendKind> AvailableBackends() {
  std::vector<BackendKind> kinds = {BackendKind::kReference, BackendKind::kColumnar};
  if (BackendAvailable(BackendKind::kSqlite)) kinds.push_back(BackendKind::kSqlite);
  return kinds;
}

// ---------------------------------------------------------------------------
// Parameterization.

namespace {

bool IsLiteralExpr(const Ast& e) {
  return e.sym == Symbol::kNumExpr || e.sym == Symbol::kStrExpr;
}

Result<Value> LiteralValue(const Ast& e) {
  if (e.sym == Symbol::kStrExpr) return Value(e.value);
  if (e.sym != Symbol::kNumExpr) {
    return Status::Invalid("not a literal: " + std::string(SymbolName(e.sym)));
  }
  // Same int/double split as the executor's row evaluator.
  return ParseNumericLiteral(e.value);
}

/// Replaces every literal in the subtree with a kParam placeholder.
Status ParameterizeExpr(Ast* e, std::vector<Value>* params) {
  if (IsLiteralExpr(*e)) {
    IFGEN_ASSIGN_OR_RETURN(Value v, LiteralValue(*e));
    params->push_back(std::move(v));
    *e = Ast(Symbol::kParam, std::to_string(params->size()));
    return Status::OK();
  }
  for (Ast& c : e->children) {
    IFGEN_RETURN_NOT_OK(ParameterizeExpr(&c, params));
  }
  return Status::OK();
}

/// Spells a parameter back as SQL literal text (inverse of LiteralValue up
/// to formatting). Doubles always carry a '.' or exponent so re-parsing
/// keeps the type.
Result<std::string> LiteralText(const Value& v) {
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_double()) {
    std::string s = StrFormat("%.17g", v.AsDouble());
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
  }
  if (v.is_string()) return v.AsString();
  return Status::Invalid("cannot spell NULL parameter as a literal");
}

Status BindExpr(Ast* e, const std::vector<Value>& params) {
  if (e->sym == Symbol::kParam) {
    IFGEN_ASSIGN_OR_RETURN(size_t idx, ParseParamMarker(e->value, params.size()));
    const Value& v = params[idx];
    IFGEN_ASSIGN_OR_RETURN(std::string text, LiteralText(v));
    *e = Ast(v.is_string() ? Symbol::kStrExpr : Symbol::kNumExpr, std::move(text));
    return Status::OK();
  }
  for (Ast& c : e->children) {
    IFGEN_RETURN_NOT_OK(BindExpr(&c, params));
  }
  return Status::OK();
}

}  // namespace

Result<ParameterizedQuery> ParameterizeQuery(const Ast& query) {
  if (query.sym != Symbol::kSelect) {
    return Status::Invalid("ParameterizeQuery expects a Select root");
  }
  ParameterizedQuery pq;
  pq.shape = query;
  for (Ast& clause : pq.shape.children) {
    switch (clause.sym) {
      case Symbol::kWhere:
        for (Ast& c : clause.children) {
          IFGEN_RETURN_NOT_OK(ParameterizeExpr(&c, &pq.params));
        }
        break;
      case Symbol::kTop:
      case Symbol::kLimit: {
        // Clause counts live in the node's value, not in a child literal.
        // Rejects already-parameterized "?N" shapes: re-parameterizing a
        // shape is a caller error, not a crash.
        IFGEN_ASSIGN_OR_RETURN(int64_t count, ParseCountLiteral(clause.value));
        pq.params.push_back(Value(count));
        clause.value = "?" + std::to_string(pq.params.size());
        break;
      }
      default:
        break;  // SELECT/GROUP BY/ORDER BY literals shape the output schema
    }
  }
  IFGEN_ASSIGN_OR_RETURN(pq.key, Unparse(pq.shape));
  return pq;
}

Result<Ast> BindParams(const Ast& shape, const std::vector<Value>& params) {
  Ast bound = shape;
  for (Ast& clause : bound.children) {
    if ((clause.sym == Symbol::kTop || clause.sym == Symbol::kLimit) &&
        !clause.value.empty() && clause.value[0] == '?') {
      IFGEN_ASSIGN_OR_RETURN(size_t idx,
                             ParseParamMarker(clause.value, params.size()));
      if (!params[idx].is_int()) {
        return Status::Invalid("TOP/LIMIT parameter must be an integer");
      }
      clause.value = std::to_string(params[idx].AsInt());
      continue;
    }
    IFGEN_RETURN_NOT_OK(BindExpr(&clause, params));
  }
  return bound;
}

// ---------------------------------------------------------------------------
// ExecutionBackend base.

Result<PreparedQuery*> ExecutionBackend::Prepare(const Ast& query,
                                                 std::vector<Value>* params_out) {
  IFGEN_ASSIGN_OR_RETURN(ParameterizedQuery pq, ParameterizeQuery(query));
  IFGEN_ASSIGN_OR_RETURN(PreparedQuery * plan, PrepareShape(pq));
  if (params_out != nullptr) *params_out = std::move(pq.params);
  return plan;
}

const ExecutionBackend::ObsHandles& ExecutionBackend::ObsMetrics() const {
  std::call_once(obs_once_, [this] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    const obs::LabelSet labels = {{"backend", std::string(BackendKindName(kind()))}};
    obs_.prepares = reg.GetCounter("ifgen_backend_prepares_total",
                                   "Parameterized shapes compiled into plans", labels);
    obs_.plan_cache_hits =
        reg.GetCounter("ifgen_backend_plan_cache_hits_total",
                       "PrepareShape calls served from the plan cache", labels);
    obs_.executions = reg.GetCounter("ifgen_backend_executions_total",
                                     "Prepared-plan executions via Execute", labels);
    // 1us..~8.4s in x2 steps.
    obs::HistogramOptions opts;
    opts.first_bound = 1.0;
    opts.growth = 2.0;
    opts.num_buckets = 24;
    obs_.execute_us = reg.GetHistogram("ifgen_backend_execute_duration_us",
                                       "Latency of Execute calls (microseconds)",
                                       opts, labels);
  });
  return obs_;
}

Result<PreparedQuery*> ExecutionBackend::PrepareShape(const ParameterizedQuery& pq) {
  if (std::shared_ptr<PreparedQuery> hit = plans_.Lookup(pq.key)) {
    ObsMetrics().plan_cache_hits->Inc();
    return hit.get();
  }
  obs::TraceSpan span("engine.prepare", "engine");
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<PreparedQuery> plan, Compile(pq));
  ObsMetrics().prepares->Inc();
  std::shared_ptr<PreparedQuery> resident =
      plans_.Insert(pq.key, std::shared_ptr<PreparedQuery>(std::move(plan)));
  return resident.get();
}

Result<Table> ExecutionBackend::Execute(const Ast& query) {
  std::vector<Value> params;
  IFGEN_ASSIGN_OR_RETURN(PreparedQuery * plan, Prepare(query, &params));
  executions_.fetch_add(1, std::memory_order_relaxed);
  const ObsHandles& obs = ObsMetrics();
  obs.executions->Inc();
  obs::TraceSpan span("engine.execute", "engine");
  Stopwatch watch;
  Result<Table> result = plan->Execute(params);
  obs.execute_us->Observe(static_cast<double>(watch.ElapsedMicros()));
  return result;
}

Result<Table> ExecutionBackend::ExecuteSql(std::string_view sql) {
  IFGEN_ASSIGN_OR_RETURN(Ast q, ParseQuery(sql));
  return Execute(q);
}

BackendStats ExecutionBackend::stats() const {
  BackendStats s;
  s.prepares = plans_.misses();
  s.plan_cache_hits = plans_.hits();
  s.executions = executions_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Reference backend: the row-at-a-time executor behind the interface.

namespace {

class ReferencePreparedQuery : public PreparedQuery {
 public:
  ReferencePreparedQuery(std::string key, size_t num_params, Ast shape,
                         const Executor* executor)
      : PreparedQuery(std::move(key), num_params),
        shape_(std::move(shape)),
        executor_(executor) {}

  Result<Table> Execute(const std::vector<Value>& params) override {
    if (params.size() != num_params()) {
      return Status::Invalid("expected " + std::to_string(num_params()) +
                             " parameters, got " + std::to_string(params.size()));
    }
    return executor_->Execute(shape_, params);
  }

 private:
  Ast shape_;
  const Executor* executor_;
};

class ReferenceBackend : public ExecutionBackend {
 public:
  explicit ReferenceBackend(const Database* db)
      : ExecutionBackend(db), executor_(db) {}

  std::string_view name() const override { return "reference"; }
  BackendKind kind() const override { return BackendKind::kReference; }

 protected:
  Result<std::unique_ptr<PreparedQuery>> Compile(
      const ParameterizedQuery& pq) override {
    return std::unique_ptr<PreparedQuery>(new ReferencePreparedQuery(
        pq.key, pq.params.size(), pq.shape, &executor_));
  }

 private:
  Executor executor_;
};

}  // namespace

Result<std::unique_ptr<ExecutionBackend>> CreateBackend(BackendKind kind,
                                                        const Database* db) {
  if (db == nullptr) return Status::Invalid("CreateBackend: null database");
  switch (kind) {
    case BackendKind::kReference:
      return std::unique_ptr<ExecutionBackend>(new ReferenceBackend(db));
    case BackendKind::kColumnar:
      return MakeColumnarBackend(db);
    case BackendKind::kSqlite:
#ifdef IFGEN_WITH_SQLITE
      return MakeSqliteBackend(db);
#else
      return Status::Unimplemented(
          "SQLite backend not compiled in (configure with -DIFGEN_WITH_SQLITE=ON)");
#endif
  }
  return Status::Invalid("unknown backend kind");
}

// ---------------------------------------------------------------------------
// Result-identity helpers.

Table SortedByAllColumns(const Table& t) {
  std::vector<size_t> idx(t.num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      int cmp = t.At(a, c).Compare(t.At(b, c));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return t.Gather(idx);
}

namespace {

bool CellsMatch(const Value& a, const Value& b, double eps) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= eps * scale;
  }
  if (a.is_string() && b.is_string()) return a.AsString() == b.AsString();
  return false;
}

}  // namespace

Status TablesEquivalent(const Table& a, const Table& b, double eps) {
  if (a.num_columns() != b.num_columns()) {
    return Status::Invalid(StrFormat("column count %zu != %zu", a.num_columns(),
                                     b.num_columns()));
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().columns[c].name != b.schema().columns[c].name) {
      return Status::Invalid("column name mismatch at " + std::to_string(c) + ": " +
                             a.schema().columns[c].name + " vs " +
                             b.schema().columns[c].name);
    }
  }
  if (a.num_rows() != b.num_rows()) {
    return Status::Invalid(StrFormat("row count %zu != %zu", a.num_rows(),
                                     b.num_rows()));
  }
  Table sa = SortedByAllColumns(a);
  Table sb = SortedByAllColumns(b);
  for (size_t r = 0; r < sa.num_rows(); ++r) {
    for (size_t c = 0; c < sa.num_columns(); ++c) {
      if (!CellsMatch(sa.At(r, c), sb.At(r, c), eps)) {
        return Status::Invalid(StrFormat(
            "cell (%zu, %zu) mismatch after canonical sort: %s vs %s", r, c,
            sa.At(r, c).ToString().c_str(), sb.At(r, c).ToString().c_str()));
      }
    }
  }
  return Status::OK();
}

Status VerifyBackendsAgree(const Database& db, const std::vector<std::string>& sqls,
                           const std::vector<BackendKind>& kinds) {
  if (kinds.size() < 2) return Status::OK();
  std::vector<std::unique_ptr<ExecutionBackend>> backends;
  for (BackendKind k : kinds) {
    IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<ExecutionBackend> b,
                           CreateBackend(k, &db));
    backends.push_back(std::move(b));
  }
  for (const std::string& sql : sqls) {
    IFGEN_ASSIGN_OR_RETURN(Table expected, backends[0]->ExecuteSql(sql));
    for (size_t i = 1; i < backends.size(); ++i) {
      IFGEN_ASSIGN_OR_RETURN(Table got, backends[i]->ExecuteSql(sql));
      Status eq = TablesEquivalent(expected, got);
      if (!eq.ok()) {
        return Status::Invalid(std::string(backends[i]->name()) + " disagrees with " +
                               std::string(backends[0]->name()) + " on \"" + sql +
                               "\": " + eq.ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace ifgen
