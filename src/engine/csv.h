#pragma once

#include <string>

#include "engine/table.h"
#include "util/status.h"

namespace ifgen {

/// \brief Parses CSV text into a Table using the given schema.
///
/// The first line must be a header matching the schema column names
/// (case-insensitive, same order). Quoting: double quotes with "" escapes.
Result<Table> ParseCsv(const TableSchema& schema, std::string_view text);

/// \brief Serializes a table to CSV (header + rows).
std::string ToCsv(const Table& table);

/// \brief Reads a CSV file from disk.
Result<Table> ReadCsvFile(const TableSchema& schema, const std::string& path);

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace ifgen
