#include "engine/datagen.h"

#include "util/logging.h"
#include "util/rng.h"

namespace ifgen {

Table MakeSdssTable(const std::string& name, size_t rows, uint64_t seed) {
  TableSchema schema;
  schema.name = name;
  schema.columns = {
      {"objid", ColumnType::kInt64},  {"u", ColumnType::kDouble},
      {"g", ColumnType::kDouble},     {"r", ColumnType::kDouble},
      {"i", ColumnType::kDouble},     {"ra", ColumnType::kDouble},
      {"dec", ColumnType::kDouble},   {"redshift", ColumnType::kDouble},
  };
  Table table(schema);
  Rng rng(seed);
  for (size_t row = 0; row < rows; ++row) {
    std::vector<Value> vals;
    vals.emplace_back(static_cast<int64_t>(1000000 + row));
    for (int m = 0; m < 4; ++m) {
      vals.emplace_back(rng.UniformDouble(0.0, 30.0));
    }
    vals.emplace_back(rng.UniformDouble(0.0, 360.0));
    vals.emplace_back(rng.UniformDouble(-90.0, 90.0));
    vals.emplace_back(rng.UniformDouble(0.0, 7.0));
    Status st = table.AppendRow(std::move(vals));
    IFGEN_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

Table MakeFlightsTable(size_t rows, uint64_t seed) {
  TableSchema schema;
  schema.name = "flights";
  schema.columns = {
      {"carrier", ColumnType::kString}, {"origin", ColumnType::kString},
      {"dest", ColumnType::kString},    {"month", ColumnType::kInt64},
      {"dep_delay", ColumnType::kDouble}, {"distance", ColumnType::kDouble},
  };
  static const char* kCarriers[] = {"AA", "DL", "UA", "WN", "B6"};
  static const char* kAirports[] = {"JFK", "LGA", "EWR", "SFO", "LAX", "ORD", "ATL"};
  Table table(schema);
  Rng rng(seed);
  for (size_t row = 0; row < rows; ++row) {
    std::vector<Value> vals;
    vals.emplace_back(std::string(kCarriers[rng.UniformIndex(5)]));
    size_t o = rng.UniformIndex(7);
    size_t d = rng.UniformIndex(7);
    if (d == o) d = (d + 1) % 7;
    vals.emplace_back(std::string(kAirports[o]));
    vals.emplace_back(std::string(kAirports[d]));
    vals.emplace_back(rng.UniformInt(1, 12));
    // Delay: mostly small, occasionally large (mixture).
    double delay = rng.Bernoulli(0.15) ? rng.UniformDouble(30, 240)
                                       : rng.UniformDouble(-10, 30);
    vals.emplace_back(delay);
    vals.emplace_back(rng.UniformDouble(100, 3000));
    Status st = table.AppendRow(std::move(vals));
    IFGEN_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

}  // namespace ifgen
