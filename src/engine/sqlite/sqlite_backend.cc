// Compiled only when the IFGEN_WITH_SQLITE CMake option is ON.
#include "engine/sqlite/sqlite_backend.h"

#include <sqlite3.h>

#include <mutex>

#include "engine/exec_util.h"
#include "sql/unparser.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

/// The sqlite3 handle plus its statement-serialization lock, shared by the
/// backend and every prepared plan so the connection outlives all
/// statements regardless of destruction order.
struct Connection {
  sqlite3* db = nullptr;
  std::mutex mu;

  ~Connection() {
    if (db != nullptr) sqlite3_close(db);
  }
};

std::string Quoted(const std::string& ident) { return "\"" + ident + "\""; }

std::string_view SqlType(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "INTEGER";
    case ColumnType::kDouble:
      return "REAL";
    case ColumnType::kString:
      return "TEXT";
  }
  return "TEXT";
}

Status SqliteError(sqlite3* db, const std::string& what) {
  return Status::Internal(what + ": " + sqlite3_errmsg(db));
}

Status ExecSimple(sqlite3* db, const std::string& sql) {
  char* err = nullptr;
  if (sqlite3_exec(db, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
    std::string msg = err != nullptr ? err : "unknown sqlite error";
    sqlite3_free(err);
    return Status::Internal("sqlite exec failed (" + sql + "): " + msg);
  }
  return Status::OK();
}

Status BindValue(sqlite3* db, sqlite3_stmt* stmt, int index, const Value& v) {
  int rc = SQLITE_OK;
  if (v.is_null()) {
    rc = sqlite3_bind_null(stmt, index);
  } else if (v.is_int()) {
    rc = sqlite3_bind_int64(stmt, index, v.AsInt());
  } else if (v.is_double()) {
    rc = sqlite3_bind_double(stmt, index, v.AsDouble());
  } else {
    rc = sqlite3_bind_text(stmt, index, v.AsString().c_str(),
                           static_cast<int>(v.AsString().size()), SQLITE_TRANSIENT);
  }
  return rc == SQLITE_OK ? Status::OK() : SqliteError(db, "bind");
}

Status IngestTable(sqlite3* db, const Table& t) {
  const TableSchema& schema = t.schema();
  std::string create = "CREATE TABLE " + Quoted(schema.name) + " (";
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    if (c > 0) create += ", ";
    create += Quoted(schema.columns[c].name) + " " +
              std::string(SqlType(schema.columns[c].type));
  }
  create += ");";
  IFGEN_RETURN_NOT_OK(ExecSimple(db, create));

  std::string insert = "INSERT INTO " + Quoted(schema.name) + " VALUES (";
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    insert += c > 0 ? ", ?" : "?";
  }
  insert += ");";
  sqlite3_stmt* stmt = nullptr;
  if (sqlite3_prepare_v2(db, insert.c_str(), -1, &stmt, nullptr) != SQLITE_OK) {
    return SqliteError(db, "prepare insert");
  }
  IFGEN_RETURN_NOT_OK(ExecSimple(db, "BEGIN;"));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      Status s = BindValue(db, stmt, static_cast<int>(c) + 1, t.At(r, c));
      if (!s.ok()) {
        sqlite3_finalize(stmt);
        return s;
      }
    }
    if (sqlite3_step(stmt) != SQLITE_DONE) {
      Status s = SqliteError(db, "insert row");
      sqlite3_finalize(stmt);
      return s;
    }
    sqlite3_reset(stmt);
  }
  sqlite3_finalize(stmt);
  return ExecSimple(db, "COMMIT;");
}

/// Forces real division: the reference executor evaluates `/` as double
/// division regardless of operand types, SQLite truncates INTEGER/INTEGER.
void ForceRealDivision(Ast* e) {
  for (Ast& c : e->children) ForceRealDivision(&c);
  if (e->sym == Symbol::kBiExpr && e->value == "/" && e->children.size() == 2) {
    Ast lhs = std::move(e->children[0]);
    e->children[0] =
        Ast(Symbol::kBiExpr, "*", {std::move(lhs), Ast(Symbol::kNumExpr, "1.0")});
  }
}

/// Renders the parameterized shape as SQLite SQL: TOP folds into LIMIT
/// (both present -> `LIMIT min(a, b)`, matching the reference executor),
/// `?N` placeholders pass through the unparser natively.
Result<std::string> RenderSqliteSql(const Ast& shape) {
  Ast rendered = shape;
  ForceRealDivision(&rendered);
  std::string top_text;
  std::string limit_text;
  std::vector<Ast> kept;
  for (Ast& c : rendered.children) {
    if (c.sym == Symbol::kTop) {
      top_text = c.value;
    } else if (c.sym == Symbol::kLimit) {
      limit_text = c.value;
    } else {
      kept.push_back(std::move(c));
    }
  }
  rendered.children = std::move(kept);
  IFGEN_ASSIGN_OR_RETURN(std::string sql, Unparse(rendered));
  if (!top_text.empty() && !limit_text.empty()) {
    sql += " limit min(" + top_text + ", " + limit_text + ")";
  } else if (!top_text.empty() || !limit_text.empty()) {
    sql += " limit " + (top_text.empty() ? limit_text : top_text);
  }
  return sql;
}

class SqlitePlan : public PreparedQuery {
 public:
  SqlitePlan(std::string key, size_t num_params, std::shared_ptr<Connection> conn,
             sqlite3_stmt* stmt, TableSchema out_schema)
      : PreparedQuery(std::move(key), num_params),
        conn_(std::move(conn)),
        stmt_(stmt),
        out_schema_(std::move(out_schema)) {}

  ~SqlitePlan() override {
    std::lock_guard<std::mutex> lock(conn_->mu);
    sqlite3_finalize(stmt_);
  }

  Result<Table> Execute(const std::vector<Value>& params) override {
    if (params.size() != num_params()) {
      return Status::Invalid("expected " + std::to_string(num_params()) +
                             " parameters, got " + std::to_string(params.size()));
    }
    std::lock_guard<std::mutex> lock(conn_->mu);
    sqlite3_reset(stmt_);
    sqlite3_clear_bindings(stmt_);
    for (size_t i = 0; i < params.size(); ++i) {
      IFGEN_RETURN_NOT_OK(
          BindValue(conn_->db, stmt_, static_cast<int>(i) + 1, params[i]));
    }
    Table out(out_schema_);
    const int ncols = sqlite3_column_count(stmt_);
    if (static_cast<size_t>(ncols) != out_schema_.columns.size()) {
      return Status::Internal("sqlite column count mismatch");
    }
    while (true) {
      int rc = sqlite3_step(stmt_);
      if (rc == SQLITE_DONE) break;
      if (rc != SQLITE_ROW) return SqliteError(conn_->db, "step");
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(ncols));
      for (int c = 0; c < ncols; ++c) {
        switch (sqlite3_column_type(stmt_, c)) {
          case SQLITE_INTEGER:
            row.push_back(Value(static_cast<int64_t>(sqlite3_column_int64(stmt_, c))));
            break;
          case SQLITE_FLOAT:
            row.push_back(Value(sqlite3_column_double(stmt_, c)));
            break;
          case SQLITE_NULL:
            row.push_back(Value());
            break;
          default: {
            const unsigned char* text = sqlite3_column_text(stmt_, c);
            int len = sqlite3_column_bytes(stmt_, c);
            row.push_back(Value(std::string(reinterpret_cast<const char*>(text),
                                            static_cast<size_t>(len))));
            break;
          }
        }
      }
      IFGEN_RETURN_NOT_OK(out.AppendRow(std::move(row)));
    }
    return out;
  }

 private:
  std::shared_ptr<Connection> conn_;
  sqlite3_stmt* stmt_;
  TableSchema out_schema_;
};

class SqliteBackend : public ExecutionBackend {
 public:
  SqliteBackend(const Database* db, std::shared_ptr<Connection> conn)
      : ExecutionBackend(db), conn_(std::move(conn)) {}

  std::string_view name() const override { return "sqlite"; }
  BackendKind kind() const override { return BackendKind::kSqlite; }

 protected:
  Result<std::unique_ptr<PreparedQuery>> Compile(
      const ParameterizedQuery& pq) override {
    // The output schema comes from the shared inference (exec_util), not
    // from sqlite3_column_name, so names/arity are identical across
    // backends by construction.
    const Ast* project = nullptr;
    const Ast* from = nullptr;
    bool has_agg = false;
    for (const Ast& c : pq.shape.children) {
      if (c.sym == Symbol::kProject) project = &c;
      if (c.sym == Symbol::kFrom) from = &c;
    }
    if (project == nullptr || from == nullptr || from->children.empty()) {
      return Status::Invalid("query needs SELECT list and FROM clause");
    }
    if (from->children.size() != 1) {
      return Status::Unimplemented("single-table FROM only");
    }
    for (const Ast& item : project->children) has_agg |= ContainsAggregate(item);
    IFGEN_ASSIGN_OR_RETURN(TableSchema source,
                           catalog().GetTable(from->children[0].value));
    IFGEN_ASSIGN_OR_RETURN(OutputSpec spec, BuildOutputSpec(*project, source, has_agg));

    IFGEN_ASSIGN_OR_RETURN(std::string sql, RenderSqliteSql(pq.shape));
    sqlite3_stmt* stmt = nullptr;
    std::lock_guard<std::mutex> lock(conn_->mu);
    if (sqlite3_prepare_v2(conn_->db, sql.c_str(), -1, &stmt, nullptr) != SQLITE_OK) {
      return SqliteError(conn_->db, "prepare (" + sql + ")");
    }
    return std::unique_ptr<PreparedQuery>(new SqlitePlan(
        pq.key, pq.params.size(), conn_, stmt, std::move(spec.schema)));
  }

 private:
  std::shared_ptr<Connection> conn_;
};

}  // namespace

Result<std::unique_ptr<ExecutionBackend>> MakeSqliteBackend(const Database* db) {
  auto conn = std::make_shared<Connection>();
  if (sqlite3_open(":memory:", &conn->db) != SQLITE_OK) {
    return Status::Internal("cannot open :memory: sqlite database");
  }
  // The reference executor's LIKE is case-sensitive; SQLite's default isn't.
  IFGEN_RETURN_NOT_OK(ExecSimple(conn->db, "PRAGMA case_sensitive_like = ON;"));
  for (const TableSchema& schema : db->catalog().tables()) {
    IFGEN_ASSIGN_OR_RETURN(const Table* t, db->GetTable(schema.name));
    IFGEN_RETURN_NOT_OK(IngestTable(conn->db, *t));
  }
  return std::unique_ptr<ExecutionBackend>(new SqliteBackend(db, std::move(conn)));
}

}  // namespace ifgen
