#pragma once

#include <memory>

#include "engine/backend.h"

namespace ifgen {

/// \brief Builds the SQLite execution backend over `db` (not owned).
///
/// Only available when the build enables the IFGEN_WITH_SQLITE CMake option
/// (the factory is not compiled otherwise; CreateBackend returns
/// Unimplemented). Construction ingests every workload table into a
/// `:memory:` SQLite database; Prepare renders the parameterized shape to
/// SQLite SQL via the unparser (`?N` placeholders bind natively, TOP folds
/// into LIMIT, `/` is forced to real division to match the reference
/// executor) and compiles it with sqlite3_prepare_v2. Execute binds the
/// parameters and steps the statement; each plan serializes its own
/// executions (SQLite statements are single-stream).
Result<std::unique_ptr<ExecutionBackend>> MakeSqliteBackend(const Database* db);

}  // namespace ifgen
