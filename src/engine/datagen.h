#pragma once

#include <cstdint>

#include "engine/table.h"

namespace ifgen {

/// \brief Synthetic-data generators for the example workloads.
///
/// The paper evaluates on SDSS (Sloan Digital Sky Survey) query logs; we
/// cannot ship SDSS data, so these generators produce tables with the same
/// shape: photometric magnitude columns u, g, r, i plus an object id. The
/// search algorithms never look at the data — it only feeds the examples'
/// result visualizations — so shape fidelity is all that matters.

/// Creates an SDSS-like table (objid, u, g, r, i, ra, dec, redshift) with
/// `rows` rows. Magnitudes are drawn uniformly from [0, 30].
Table MakeSdssTable(const std::string& name, size_t rows, uint64_t seed);

/// Creates a flights table (carrier, origin, dest, month, dep_delay,
/// distance) for the flights example workload.
Table MakeFlightsTable(size_t rows, uint64_t seed);

}  // namespace ifgen
