#include "engine/value.h"

#include <cmath>

#include "util/string_util.h"

namespace ifgen {

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  // Heterogeneous: numbers order before strings (arbitrary but total).
  return is_numeric() ? -1 : 1;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    double d = AsDouble();
    if (std::floor(d) == d && std::abs(d) < 1e15) {
      return StrFormat("%.1f", d);
    }
    return StrFormat("%.4g", d);
  }
  return AsString();
}

}  // namespace ifgen
