#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/dto.h"
#include "api/frontend.h"
#include "runtime/service.h"
#include "workload/loader.h"

namespace ifgen {
namespace api {

/// \brief The in-process ServiceFrontend: every public operation takes and
/// returns v1 DTOs (api/dto.h) and reports failures as Status — transports
/// (src/http, the cluster WorkerServer, tests) only translate.
///
/// Wraps a GenerationService with:
///  - async job handles: SubmitGenerate admits a tracked job (bounded
///    pending queue → ResourceExhausted → HTTP 429), GetJob observes
///    state/timings/result, CancelJob cancels the queued phase;
///  - a concurrency-safe session registry: OpenSession binds a finished
///    job's interface to a per-user InteractiveRuntime over the named
///    workload's store, with TTL + capacity eviction; ApplyEvent drives
///    widgets; PollSession drains the session's feed subscriber;
///  - catalog/introspection: the registered workloads and compiled-in
///    backends, plus service/backend/runtime counters.
class ApiService : public ServiceFrontend {
 public:
  struct Options {
    /// Serving defaults differ from GenerationService's: a bounded pending
    /// queue (→ 429 under overload) instead of unbounded admission.
    static GenerationService::Options DefaultServiceOptions() {
      GenerationService::Options o;
      o.num_threads = 2;
      o.max_pending_jobs = 64;
      return o;
    }

    GenerationService::Options service = DefaultServiceOptions();
    /// Rows per workload table; 0 = each workload's default size.
    size_t workload_rows = 0;
    /// Open sessions beyond this evict the least-recently-used one.
    size_t max_sessions = 256;
    /// Sessions idle longer than this are evicted (lazily, on any session
    /// access); <= 0 disables TTL eviction.
    int64_t session_ttl_ms = 10 * 60 * 1000;
    InteractiveRuntime::Options runtime;
    /// Trace-fitted prior weights (learn/prior_fit.h) applied to every
    /// admitted job's PriorOptions. Applied identically in SubmitGenerate
    /// and ProbeCache, so local and probed cache keys cannot diverge.
    /// Empty = the hand-set BaseRuleWeight defaults.
    std::vector<std::pair<std::string, double>> learned_prior_weights;
  };

  /// Loads every registered workload (flights, sdss, synthetic) and wires
  /// the generation service. Fails only when no workload loads.
  static Result<std::unique_ptr<ApiService>> Create(Options opts);
  static Result<std::unique_ptr<ApiService>> Create() { return Create(Options()); }

  // ---- jobs -------------------------------------------------------------
  Result<GenerateAccepted> SubmitGenerate(const GenerateRequest& req) override;
  /// Cluster cache.probe: whether this service's result cache already holds
  /// the completed result of an identical request. Side-effect free beyond
  /// probe counters (no LRU bump, no cache_hits count) — see
  /// GenerationService::CachePeek. Not part of ServiceFrontend: only the
  /// cluster worker exposes it, and only the router calls it.
  Result<bool> ProbeCache(const GenerateRequest& req);
  /// `wait_ms` > 0 blocks until the job is terminal or the deadline.
  Result<JobStatusResponse> GetJob(const std::string& job_id,
                                   int64_t wait_ms = 0) override;
  Result<JobStatusResponse> CancelJob(const std::string& job_id) override;
  /// Versioned best-so-far snapshot of a running job's search. With
  /// `wait_ms` > 0, long-polls (condvar) until the progress version exceeds
  /// `last_seen_version`, the job turns terminal, or the timeout. The
  /// terminal frame (`final` = true) embeds the job's full result when one
  /// exists; mid-run frames carry the best-so-far partial (no widgets).
  Result<JobProgressResponse> GetJobProgress(const std::string& job_id,
                                             int64_t last_seen_version,
                                             int64_t wait_ms = 0) override;
  /// The job's captured span trace as Chrome trace-event JSON (Perfetto);
  /// NotFound when the job is unknown or ran with tracing disabled.
  Result<std::string> JobTrace(const std::string& job_id) override;

  // ---- sessions ---------------------------------------------------------
  Result<SessionOpenResponse> OpenSession(const SessionOpenRequest& req) override;
  Result<StepResponse> ApplyEvent(const std::string& session_id,
                                  const WidgetEventRequest& event) override;
  /// Drains the session's feed subscriber (distinct from the per-event
  /// batches in StepResponse, so a feed consumer sees every step exactly
  /// once regardless of event traffic). `wait_ms` > 0 parks on the
  /// runtime's version condvar until a step lands or the deadline.
  Result<ChangeBatchDto> PollSession(const std::string& session_id,
                                     int64_t wait_ms = 0) override;
  Status CloseSession(const std::string& session_id) override;
  /// Current result snapshot (the feed consumer's resync path).
  Result<TableDto> SessionTable(const std::string& session_id) override;

  // ---- introspection ----------------------------------------------------
  Result<CatalogResponse> Catalog() override;
  Result<StatsResponse> Stats() override;
  /// Always mode "single": this frontend IS the process doing the work.
  Result<ClusterResponse> Cluster() override;

  size_t sessions_active() const;
  GenerationService& generation_service() { return service_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Sticky per-job context the wire protocol needs beyond the
  /// GenerationService record: which workload/backend the job was admitted
  /// against (sessions default to them).
  struct JobMeta {
    std::string workload;
    GeneratorOptions options;
  };

  struct SessionEntry {
    std::shared_ptr<InteractiveRuntime> runtime;
    InteractiveRuntime::SubscriberId feed_sub = 0;
    InteractiveRuntime::SubscriberId event_sub = 0;
    std::string workload;
    Clock::time_point last_touch;
    /// Serializes step + event-subscriber drain per session (held outside
    /// mu_): the runtime alone would serialize the steps but not the
    /// drains, letting one StepResponse swallow another step's diffs.
    /// shared_ptr so ApplyEvent can hold it across eviction.
    std::shared_ptr<std::mutex> step_mu = std::make_shared<std::mutex>();
  };

  explicit ApiService(Options opts);
  Status LoadWorkloads();

  Result<GenerationService::JobId> ParseJobId(const std::string& job_id) const;
  Result<const WorkloadBundle*> FindWorkload(const std::string& name) const;
  JobStatusResponse BuildJobStatus(const GenerationService::JobInfo& info);
  GenerateResponse BuildGenerateResponse(GenerationService::JobId id,
                                         const GeneratedInterface& iface,
                                         const JobMeta& meta) const;
  /// Finds + touches a session and sweeps expired ones. Requires mu_ held.
  Result<SessionEntry*> TouchSessionLocked(const std::string& session_id);
  void SweepSessionsLocked();

  Options opts_;
  GenerationService service_;
  /// name -> bundle; unique_ptr for address stability (backends and
  /// sessions hold Database pointers into the bundle).
  std::map<std::string, std::unique_ptr<WorkloadBundle>> workloads_;

  mutable std::mutex mu_;
  std::map<GenerationService::JobId, JobMeta> job_meta_;
  std::map<std::string, SessionEntry> sessions_;
  uint64_t next_session_ = 1;
  size_t sessions_expired_ = 0;
  /// Last TTL sweep; bounds SweepSessionsLocked to one scan per ttl/10.
  Clock::time_point last_sweep_{};
  /// Counters of sessions that were evicted/closed, folded into Stats so
  /// the runtime aggregate does not shrink when sessions end.
  InteractiveRuntime::Counters retired_counters_;
};

}  // namespace api
}  // namespace ifgen
