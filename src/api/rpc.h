#pragma once

#include <string>

#include "api/dto.h"
#include "util/json.h"
#include "util/status.h"

namespace ifgen {
namespace api {

/// \brief The versioned RPC envelope the cluster speaks: the PR-5 v1 DTOs
/// become payloads inside a `{api_version, method, request_id, payload}`
/// request and a `{request_id, ok, payload | error}` reply, so the exact
/// same types serve HTTP and inter-process RPC. The wire framing (4-byte
/// length prefix) lives in cluster/frame.h; this header is
/// transport-agnostic.
///
/// Method names are dotted strings (see kMethod* below). Unknown methods
/// answer Unimplemented; an api_version other than kRpcApiVersion answers
/// InvalidArgument — a mixed-version cluster fails loudly, not subtly.

/// The one version this codec speaks; bump together with the DTO set.
inline constexpr const char kRpcApiVersion[] = "v1";

// Method names, one per ServiceFrontend operation plus worker lifecycle.
inline constexpr const char kMethodSubmitGenerate[] = "generate.submit";
inline constexpr const char kMethodGetJob[] = "job.get";
inline constexpr const char kMethodCancelJob[] = "job.cancel";
inline constexpr const char kMethodJobProgress[] = "job.progress";
inline constexpr const char kMethodJobTrace[] = "job.trace";
inline constexpr const char kMethodOpenSession[] = "session.open";
inline constexpr const char kMethodSessionEvent[] = "session.event";
inline constexpr const char kMethodPollSession[] = "session.poll";
inline constexpr const char kMethodCloseSession[] = "session.close";
inline constexpr const char kMethodSessionTable[] = "session.table";
inline constexpr const char kMethodCatalog[] = "catalog.get";
inline constexpr const char kMethodStats[] = "stats.get";
inline constexpr const char kMethodPing[] = "worker.ping";
inline constexpr const char kMethodDrain[] = "worker.drain";
// Cache peering (cluster-wide shared caches; see docs/cluster.md):
// cache.probe asks a worker whether its result cache already holds a
// completed identical job; cache.export pulls a worker's locally discovered
// hot transposition entries; cache.publish pushes sibling entries into a
// worker's peer store.
inline constexpr const char kMethodCacheProbe[] = "cache.probe";
inline constexpr const char kMethodCacheExport[] = "cache.export";
inline constexpr const char kMethodCachePublish[] = "cache.publish";

/// \brief One request frame: which operation, against which payload.
/// `request_id` is caller-chosen and echoed verbatim in the reply so a
/// client can pair frames without trusting ordering.
struct RpcEnvelope {
  std::string api_version = kRpcApiVersion;
  std::string method;
  int64_t request_id = 0;
  JsonValue payload = JsonValue::Object();

  JsonValue ToJson() const;
  static Result<RpcEnvelope> FromJson(const JsonValue& v);
  bool operator==(const RpcEnvelope& o) const {
    return api_version == o.api_version && method == o.method &&
           request_id == o.request_id && payload == o.payload;
  }
};

/// \brief One reply frame: `ok` selects which of `payload` (success DTO) or
/// `error` (ErrorBody) is meaningful.
///
/// `epoch` identifies the answering worker *incarnation* (nonzero, rolled
/// at process start). A router that recorded the epoch a job/session was
/// created under can detect that a later reply came from a restarted
/// process — whose dense local id space restarts too — and refuse to serve
/// a potentially aliased answer. 0 = unknown (pre-epoch peer).
struct RpcReply {
  int64_t request_id = 0;
  bool ok = true;
  int64_t epoch = 0;
  JsonValue payload = JsonValue::Object();
  ErrorBody error;  ///< meaningful only when !ok

  static RpcReply Success(int64_t request_id, JsonValue payload);
  static RpcReply Failure(int64_t request_id, const Status& s);

  JsonValue ToJson() const;
  static Result<RpcReply> FromJson(const JsonValue& v);
  bool operator==(const RpcReply& o) const {
    return request_id == o.request_id && ok == o.ok && epoch == o.epoch &&
           payload == o.payload && (ok || error == o.error);
  }
};

// ---------------------------------------------------------------------------
// Request payloads for methods whose HTTP shape is path/query-encoded (the
// body-carrying methods reuse their existing DTOs directly).

/// \brief Payload of job.get / job.cancel / job.trace / session.close /
/// session.poll / session.table: just the target id (+ optional wait).
struct IdRequest {
  std::string id;
  int64_t wait_ms = 0;  ///< job.get only; 0 = no blocking

  JsonValue ToJson() const;
  static Result<IdRequest> FromJson(const JsonValue& v);
  bool operator==(const IdRequest& o) const {
    return id == o.id && wait_ms == o.wait_ms;
  }
};

/// \brief Payload of job.progress: the long-poll cursor.
struct ProgressRequest {
  std::string job_id;
  int64_t last_seen_version = 0;
  int64_t wait_ms = 0;

  JsonValue ToJson() const;
  static Result<ProgressRequest> FromJson(const JsonValue& v);
  bool operator==(const ProgressRequest& o) const {
    return job_id == o.job_id && last_seen_version == o.last_seen_version &&
           wait_ms == o.wait_ms;
  }
};

/// \brief Payload of session.event: target session + the widget event.
struct SessionEventRequest {
  std::string session_id;
  WidgetEventRequest event;

  JsonValue ToJson() const;
  static Result<SessionEventRequest> FromJson(const JsonValue& v);
  bool operator==(const SessionEventRequest& o) const {
    return session_id == o.session_id && event == o.event;
  }
};

/// \brief Reply payload of worker.ping: the worker's live job/session load,
/// polled by the router's health loop and folded into stats.cluster.
struct WorkerPingResponse {
  int64_t jobs_submitted = 0;
  int64_t jobs_executed = 0;
  int64_t jobs_pending = 0;
  int64_t sessions_active = 0;
  bool draining = false;
  /// Cache-peering telemetry (see GenerationService::CountersSnapshot).
  int64_t cache_probes = 0;
  int64_t cache_probe_hits = 0;
  int64_t tt_peer_ingested = 0;
  int64_t tt_peer_hits = 0;

  JsonValue ToJson() const;
  static Result<WorkerPingResponse> FromJson(const JsonValue& v);
  bool operator==(const WorkerPingResponse& o) const {
    return jobs_submitted == o.jobs_submitted &&
           jobs_executed == o.jobs_executed && jobs_pending == o.jobs_pending &&
           sessions_active == o.sessions_active && draining == o.draining &&
           cache_probes == o.cache_probes &&
           cache_probe_hits == o.cache_probe_hits &&
           tt_peer_ingested == o.tt_peer_ingested &&
           tt_peer_hits == o.tt_peer_hits;
  }
};

// ---------------------------------------------------------------------------
// Cache-peering payloads.

/// \brief Reply payload of cache.probe: whether the worker's result cache
/// holds a completed identical job (probing is side-effect free — no LRU
/// bump, no cache_hits count).
struct CacheProbeResponse {
  bool hit = false;

  JsonValue ToJson() const;
  static Result<CacheProbeResponse> FromJson(const JsonValue& v);
  bool operator==(const CacheProbeResponse& o) const { return hit == o.hit; }
};

/// \brief Request payload of cache.export: how many entries per store the
/// caller wants at most.
struct TtExportRequest {
  int64_t max_entries = 256;

  JsonValue ToJson() const;
  static Result<TtExportRequest> FromJson(const JsonValue& v);
  bool operator==(const TtExportRequest& o) const {
    return max_entries == o.max_entries;
  }
};

/// \brief One cost-identity store's transposition entries on the wire.
/// `store_key` and each entry's canonical hash are full uint64s, encoded as
/// hex strings (the strict Int codec is int64 and hashes use all 64 bits);
/// costs are finite by construction (non-finite entries are never exported
/// — JSON cannot encode them).
struct TtBatchDto {
  uint64_t store_key = 0;
  std::vector<TtSeedEntry> entries;

  JsonValue ToJson() const;
  static Result<TtBatchDto> FromJson(const JsonValue& v);
  bool operator==(const TtBatchDto& o) const;
};

/// \brief Reply payload of cache.export and request payload of
/// cache.publish: a batch of stores' entries.
struct TtSyncDto {
  std::vector<TtBatchDto> batches;

  JsonValue ToJson() const;
  static Result<TtSyncDto> FromJson(const JsonValue& v);
  bool operator==(const TtSyncDto& o) const { return batches == o.batches; }
};

/// \brief Reply payload of cache.publish: how many entries were new to the
/// receiving worker (first-writer-wins merge).
struct TtSyncAck {
  int64_t ingested = 0;

  JsonValue ToJson() const;
  static Result<TtSyncAck> FromJson(const JsonValue& v);
  bool operator==(const TtSyncAck& o) const { return ingested == o.ingested; }
};

/// \brief Reply payload of job.trace (a JSON document in a string) and
/// session.close (empty fields) — the "everything else" scalar wrapper.
struct TextReply {
  std::string text;

  JsonValue ToJson() const;
  static Result<TextReply> FromJson(const JsonValue& v);
  bool operator==(const TextReply& o) const { return text == o.text; }
};

}  // namespace api
}  // namespace ifgen
