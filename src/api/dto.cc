#include "api/dto.h"

#include <algorithm>

#include "engine/backend.h"
#include "util/string_util.h"

namespace ifgen {
namespace api {

// ---------------------------------------------------------------------------
// ObjectReader.

ObjectReader::ObjectReader(const JsonValue& value, std::string what)
    : value_(value), what_(std::move(what)) {
  if (!value_.is_object()) {
    status_ = Status::Invalid(what_ + ": expected a JSON object");
  } else {
    consumed_.assign(value_.members().size(), false);
  }
}

const JsonValue* ObjectReader::Get(const char* key) {
  if (!value_.is_object()) return nullptr;
  for (size_t i = 0; i < value_.members().size(); ++i) {
    if (value_.members()[i].first == key) {
      consumed_[i] = true;
      return &value_.members()[i].second;
    }
  }
  return nullptr;
}

void ObjectReader::Fail(Status s) {
  if (status_.ok()) status_ = std::move(s);
}

void ObjectReader::String(const char* key, std::string* out, bool required) {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
    return;
  }
  if (!v->is_string()) {
    Fail(Status::Invalid(what_ + ": field '" + key + "' must be a string"));
    return;
  }
  *out = v->AsString();
}

void ObjectReader::Int(const char* key, int64_t* out, bool required, int64_t lo,
                       int64_t hi) {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
    return;
  }
  if (!v->is_int()) {
    Fail(Status::Invalid(what_ + ": field '" + key + "' must be an integer"));
    return;
  }
  if (v->AsInt() < lo || v->AsInt() > hi) {
    Fail(Status::OutOfRange(what_ + ": field '" + key + "'=" +
                            std::to_string(v->AsInt()) + " outside [" +
                            std::to_string(lo) + ", " + std::to_string(hi) + "]"));
    return;
  }
  *out = v->AsInt();
}

void ObjectReader::Double(const char* key, double* out, bool required) {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
    return;
  }
  if (!v->is_number()) {
    Fail(Status::Invalid(what_ + ": field '" + key + "' must be a number"));
    return;
  }
  *out = v->AsDouble();
}

void ObjectReader::Bool(const char* key, bool* out, bool required) {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
    return;
  }
  if (!v->is_bool()) {
    Fail(Status::Invalid(what_ + ": field '" + key + "' must be a boolean"));
    return;
  }
  *out = v->AsBool();
}

void ObjectReader::StringArray(const char* key, std::vector<std::string>* out,
                               bool required) {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
    return;
  }
  if (!v->is_array()) {
    Fail(Status::Invalid(what_ + ": field '" + key + "' must be an array"));
    return;
  }
  out->clear();
  for (const JsonValue& item : v->items()) {
    if (!item.is_string()) {
      Fail(Status::Invalid(what_ + ": field '" + key + "' must contain strings only"));
      return;
    }
    out->push_back(item.AsString());
  }
}

const JsonValue* ObjectReader::Child(const char* key, bool required) {
  const JsonValue* v = Get(key);
  if (v == nullptr && required) {
    Fail(Status::Invalid(what_ + ": missing required field '" + key + "'"));
  }
  return v;
}

Status ObjectReader::Finish() {
  if (!status_.ok()) return status_;
  std::vector<std::string> unknown;
  for (size_t i = 0; i < consumed_.size(); ++i) {
    if (!consumed_[i]) unknown.push_back("'" + value_.members()[i].first + "'");
  }
  if (!unknown.empty()) {
    return Status::Invalid(what_ + ": unknown field(s) " + Join(unknown, ", "));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scalars.

JsonValue ValueToJson(const Value& v) {
  if (v.is_null()) return JsonValue::MakeNull();
  if (v.is_int()) return JsonValue::Int(v.AsInt());
  if (v.is_double()) return JsonValue::Double(v.AsDouble());
  return JsonValue::Str(v.AsString());
}

Result<Value> ValueFromJson(const JsonValue& j) {
  switch (j.kind()) {
    case JsonValue::Kind::kNull:
      return Value();
    case JsonValue::Kind::kInt:
      return Value(j.AsInt());
    case JsonValue::Kind::kDouble:
      return Value(j.AsDouble());
    case JsonValue::Kind::kString:
      return Value(j.AsString());
    default:
      return Status::Invalid("table cell must be null, number, or string");
  }
}

namespace {

/// Decodes an array of scalar rows; `what` names the enclosing DTO.
Status RowsFromJson(const JsonValue* arr, const std::string& what,
                    std::vector<std::vector<Value>>* out) {
  out->clear();
  if (arr == nullptr) return Status::OK();
  if (!arr->is_array()) return Status::Invalid(what + ": rows must be an array");
  for (const JsonValue& row : arr->items()) {
    if (!row.is_array()) {
      return Status::Invalid(what + ": each row must be an array");
    }
    std::vector<Value> cells;
    cells.reserve(row.size());
    for (const JsonValue& cell : row.items()) {
      IFGEN_ASSIGN_OR_RETURN(Value v, ValueFromJson(cell));
      cells.push_back(std::move(v));
    }
    out->push_back(std::move(cells));
  }
  return Status::OK();
}

JsonValue RowsToJson(const std::vector<std::vector<Value>>& rows) {
  JsonValue arr = JsonValue::Array();
  for (const std::vector<Value>& row : rows) {
    JsonValue jrow = JsonValue::Array();
    for (const Value& cell : row) jrow.Append(ValueToJson(cell));
    arr.Append(std::move(jrow));
  }
  return arr;
}

JsonValue StringsToJson(const std::vector<std::string>& items) {
  JsonValue arr = JsonValue::Array();
  for (const std::string& s : items) arr.Append(JsonValue::Str(s));
  return arr;
}

/// Decodes an array of nested DTOs via T::FromJson.
template <typename T>
Status ArrayFromJson(const JsonValue* arr, const std::string& what,
                     std::vector<T>* out) {
  out->clear();
  if (arr == nullptr) return Status::OK();
  if (!arr->is_array()) return Status::Invalid(what + ": must be an array");
  for (const JsonValue& item : arr->items()) {
    IFGEN_ASSIGN_OR_RETURN(T t, T::FromJson(item));
    out->push_back(std::move(t));
  }
  return Status::OK();
}

template <typename T>
JsonValue ArrayToJson(const std::vector<T>& items) {
  JsonValue arr = JsonValue::Array();
  for (const T& item : items) arr.Append(item.ToJson());
  return arr;
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm a : {Algorithm::kMcts, Algorithm::kRandom, Algorithm::kGreedy,
                      Algorithm::kBeam, Algorithm::kExhaustive, Algorithm::kBottomUp}) {
    if (name == AlgorithmName(a)) return a;
  }
  return Status::Invalid("unknown algorithm '" + name +
                         "' (expected mcts|random|greedy|beam|exhaustive|bottom-up)");
}

Result<BackendKind> ParseBackendKind(const std::string& name) {
  for (BackendKind k :
       {BackendKind::kReference, BackendKind::kColumnar, BackendKind::kSqlite}) {
    if (name == BackendKindName(k)) return k;
  }
  return Status::Invalid("unknown backend '" + name +
                         "' (expected reference|columnar|sqlite)");
}

Result<ParallelMode> ParseParallelMode(const std::string& name) {
  for (ParallelMode m : {ParallelMode::kRoot, ParallelMode::kLeaf}) {
    if (name == ParallelModeName(m)) return m;
  }
  return Status::Invalid("unknown parallel_mode '" + name + "' (expected root|leaf)");
}

}  // namespace

// ---------------------------------------------------------------------------
// ErrorBody.

bool ErrorBody::RetryableCode(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

ErrorBody ErrorBody::FromStatus(const Status& s) {
  ErrorBody e;
  e.code = StatusCodeName(s.ok() ? StatusCode::kInternal : s.code());
  e.message = s.ok() ? "error body built from OK status" : s.message();
  e.retryable = !s.ok() && RetryableCode(s.code());
  return e;
}

Status ErrorBody::ToStatus() const {
  for (int c = 1; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    StatusCode sc = static_cast<StatusCode>(c);
    if (code == StatusCodeName(sc)) return Status(sc, message);
  }
  return Status::Internal("unrecognized error code '" + code + "': " + message);
}

JsonValue ErrorBody::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("code", JsonValue::Str(code));
  v.Set("message", JsonValue::Str(message));
  v.Set("retryable", JsonValue::Bool(retryable));
  return v;
}

Result<ErrorBody> ErrorBody::FromJson(const JsonValue& v) {
  ErrorBody e;
  ObjectReader r(v, "ErrorBody");
  r.String("code", &e.code, /*required=*/true);
  r.String("message", &e.message, /*required=*/true);
  // Optional for decode back-compat with pre-retryable payloads (absent =
  // not retryable); every v1 encoder emits it.
  r.Bool("retryable", &e.retryable);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return e;
}

// ---------------------------------------------------------------------------
// ApiOptions.

Result<GeneratorOptions> ApiOptions::ToGeneratorOptions() const {
  GeneratorOptions o;
  IFGEN_ASSIGN_OR_RETURN(o.algorithm, ParseAlgorithm(algorithm));
  IFGEN_ASSIGN_OR_RETURN(o.backend, ParseBackendKind(backend));
  IFGEN_ASSIGN_OR_RETURN(o.parallel.mode, ParseParallelMode(parallel_mode));
  if (screen_width < 10 || screen_width > 10000 || screen_height < 5 ||
      screen_height > 10000) {
    return Status::OutOfRange("screen must be within [10,10000]x[5,10000], got " +
                              std::to_string(screen_width) + "x" +
                              std::to_string(screen_height));
  }
  if (time_budget_ms < 0 || time_budget_ms > 10 * 60 * 1000) {
    return Status::OutOfRange("time_budget_ms must be in [0, 600000], got " +
                              std::to_string(time_budget_ms));
  }
  if (max_iterations < 0) {
    return Status::OutOfRange("max_iterations must be >= 0");
  }
  if (deadline_ms < 0 || deadline_ms > 10 * 60 * 1000) {
    return Status::OutOfRange("deadline_ms must be in [0, 600000], got " +
                              std::to_string(deadline_ms));
  }
  if (target_cost < 0.0) {
    return Status::OutOfRange("target_cost must be >= 0");
  }
  if (plateau_fraction < 0.0 || plateau_fraction > 1.0) {
    return Status::OutOfRange("plateau_fraction must be in [0, 1], got " +
                              std::to_string(plateau_fraction));
  }
  if (time_budget_ms == 0 && max_iterations == 0 && deadline_ms == 0) {
    return Status::OutOfRange(
        "unbounded search: time_budget_ms == 0 requires max_iterations > 0 "
        "or deadline_ms > 0");
  }
  if (seed < 0) return Status::OutOfRange("seed must be >= 0");
  if (num_threads < 1 || num_threads > 64) {
    return Status::OutOfRange("num_threads must be in [1, 64], got " +
                              std::to_string(num_threads));
  }
  if (k_assignments < 1 || k_assignments > 64) {
    return Status::OutOfRange("k_assignments must be in [1, 64], got " +
                              std::to_string(k_assignments));
  }
  o.screen.width = static_cast<int>(screen_width);
  o.screen.height = static_cast<int>(screen_height);
  o.search.time_budget_ms = time_budget_ms;
  o.search.max_iterations = static_cast<size_t>(max_iterations);
  o.search.seed = static_cast<uint64_t>(seed);
  o.search.priors.use_priors = use_priors;
  o.search.priors.progressive_widening = progressive_widening;
  o.search.time_control.deadline_ms = deadline_ms;
  o.search.time_control.target_cost = target_cost;
  o.search.time_control.plateau_fraction = plateau_fraction;
  o.parallel.num_threads = static_cast<size_t>(num_threads);
  o.delta_cost_eval = delta_cost_eval;
  o.k_assignments = static_cast<size_t>(k_assignments);
  o.cache_peering = cache_peering;
  o.experience = experience;
  return o;
}

ApiOptions ApiOptions::FromGeneratorOptions(const GeneratorOptions& o) {
  ApiOptions a;
  a.algorithm = std::string(AlgorithmName(o.algorithm));
  a.backend = std::string(BackendKindName(o.backend));
  a.parallel_mode = std::string(ParallelModeName(o.parallel.mode));
  a.time_budget_ms = o.search.time_budget_ms;
  a.max_iterations = static_cast<int64_t>(o.search.max_iterations);
  a.seed = static_cast<int64_t>(o.search.seed);
  a.screen_width = o.screen.width;
  a.screen_height = o.screen.height;
  a.num_threads = static_cast<int64_t>(o.parallel.num_threads);
  a.k_assignments = static_cast<int64_t>(o.k_assignments);
  a.use_priors = o.search.priors.use_priors;
  a.progressive_widening = o.search.priors.progressive_widening;
  a.delta_cost_eval = o.delta_cost_eval;
  a.cache_peering = o.cache_peering;
  a.experience = o.experience;
  a.deadline_ms = o.search.time_control.deadline_ms;
  a.target_cost = o.search.time_control.target_cost;
  a.plateau_fraction = o.search.time_control.plateau_fraction;
  return a;
}

JsonValue ApiOptions::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("algorithm", JsonValue::Str(algorithm));
  v.Set("backend", JsonValue::Str(backend));
  v.Set("parallel_mode", JsonValue::Str(parallel_mode));
  v.Set("time_budget_ms", JsonValue::Int(time_budget_ms));
  v.Set("max_iterations", JsonValue::Int(max_iterations));
  v.Set("seed", JsonValue::Int(seed));
  v.Set("screen_width", JsonValue::Int(screen_width));
  v.Set("screen_height", JsonValue::Int(screen_height));
  v.Set("num_threads", JsonValue::Int(num_threads));
  v.Set("k_assignments", JsonValue::Int(k_assignments));
  v.Set("use_priors", JsonValue::Bool(use_priors));
  v.Set("progressive_widening", JsonValue::Bool(progressive_widening));
  v.Set("delta_cost_eval", JsonValue::Bool(delta_cost_eval));
  v.Set("cache_peering", JsonValue::Bool(cache_peering));
  v.Set("experience", JsonValue::Bool(experience));
  v.Set("deadline_ms", JsonValue::Int(deadline_ms));
  v.Set("target_cost", JsonValue::Double(target_cost));
  v.Set("plateau_fraction", JsonValue::Double(plateau_fraction));
  return v;
}

Result<ApiOptions> ApiOptions::FromJson(const JsonValue& v) {
  ApiOptions a;
  ObjectReader r(v, "options");
  r.String("algorithm", &a.algorithm);
  r.String("backend", &a.backend);
  r.String("parallel_mode", &a.parallel_mode);
  r.Int("time_budget_ms", &a.time_budget_ms);
  r.Int("max_iterations", &a.max_iterations);
  r.Int("seed", &a.seed);
  r.Int("screen_width", &a.screen_width);
  r.Int("screen_height", &a.screen_height);
  r.Int("num_threads", &a.num_threads);
  r.Int("k_assignments", &a.k_assignments);
  r.Bool("use_priors", &a.use_priors);
  r.Bool("progressive_widening", &a.progressive_widening);
  r.Bool("delta_cost_eval", &a.delta_cost_eval);
  r.Bool("cache_peering", &a.cache_peering);
  r.Bool("experience", &a.experience);
  r.Int("deadline_ms", &a.deadline_ms);
  r.Double("target_cost", &a.target_cost);
  r.Double("plateau_fraction", &a.plateau_fraction);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return a;
}

bool ApiOptions::operator==(const ApiOptions& o) const {
  return algorithm == o.algorithm && backend == o.backend &&
         parallel_mode == o.parallel_mode && time_budget_ms == o.time_budget_ms &&
         max_iterations == o.max_iterations && seed == o.seed &&
         screen_width == o.screen_width && screen_height == o.screen_height &&
         num_threads == o.num_threads && k_assignments == o.k_assignments &&
         use_priors == o.use_priors &&
         progressive_widening == o.progressive_widening &&
         delta_cost_eval == o.delta_cost_eval && cache_peering == o.cache_peering &&
         experience == o.experience &&
         deadline_ms == o.deadline_ms && target_cost == o.target_cost &&
         plateau_fraction == o.plateau_fraction;
}

// ---------------------------------------------------------------------------
// GenerateRequest / GenerateAccepted.

JsonValue GenerateRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("workload", JsonValue::Str(workload));
  v.Set("sqls", StringsToJson(sqls));
  v.Set("options", options.ToJson());
  return v;
}

Result<GenerateRequest> GenerateRequest::FromJson(const JsonValue& v) {
  GenerateRequest req;
  ObjectReader r(v, "GenerateRequest");
  r.String("workload", &req.workload);
  r.StringArray("sqls", &req.sqls);
  const JsonValue* opts = r.Child("options");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (opts != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(req.options, ApiOptions::FromJson(*opts));
  }
  return req;
}

JsonValue GenerateAccepted::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("state", JsonValue::Str(state));
  return v;
}

Result<GenerateAccepted> GenerateAccepted::FromJson(const JsonValue& v) {
  GenerateAccepted a;
  ObjectReader r(v, "GenerateAccepted");
  r.String("job_id", &a.job_id, /*required=*/true);
  r.String("state", &a.state, /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return a;
}

// ---------------------------------------------------------------------------
// Search stats.

JsonValue TracePoint::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("ms", JsonValue::Int(ms));
  v.Set("iteration", JsonValue::Int(iteration));
  v.Set("cost", JsonValue::Double(cost));
  return v;
}

Result<TracePoint> TracePoint::FromJson(const JsonValue& v) {
  TracePoint t;
  ObjectReader r(v, "TracePoint");
  r.Int("ms", &t.ms);
  r.Int("iteration", &t.iteration);
  r.Double("cost", &t.cost);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return t;
}

SearchStatsDto SearchStatsDto::FromStats(const SearchStats& s) {
  SearchStatsDto d;
  d.iterations = static_cast<int64_t>(s.iterations);
  d.states_expanded = static_cast<int64_t>(s.states_expanded);
  d.rollouts = static_cast<int64_t>(s.rollouts);
  d.elapsed_ms = s.elapsed_ms;
  d.trees = static_cast<int64_t>(s.trees);
  d.stop_reason = std::string(StopReasonName(s.stop_reason));
  d.trace.reserve(s.trace.size());
  for (const BestTrace& t : s.trace) {
    d.trace.push_back({t.ms, static_cast<int64_t>(t.iteration), t.cost});
  }
  return d;
}

JsonValue SearchStatsDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("iterations", JsonValue::Int(iterations));
  v.Set("states_expanded", JsonValue::Int(states_expanded));
  v.Set("rollouts", JsonValue::Int(rollouts));
  v.Set("elapsed_ms", JsonValue::Int(elapsed_ms));
  v.Set("trees", JsonValue::Int(trees));
  v.Set("stop_reason", JsonValue::Str(stop_reason));
  v.Set("trace", ArrayToJson(trace));
  return v;
}

Result<SearchStatsDto> SearchStatsDto::FromJson(const JsonValue& v) {
  SearchStatsDto d;
  ObjectReader r(v, "SearchStats");
  r.Int("iterations", &d.iterations);
  r.Int("states_expanded", &d.states_expanded);
  r.Int("rollouts", &d.rollouts);
  r.Int("elapsed_ms", &d.elapsed_ms);
  r.Int("trees", &d.trees);
  r.String("stop_reason", &d.stop_reason);
  const JsonValue* trace = r.Child("trace");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_RETURN_NOT_OK(ArrayFromJson(trace, "SearchStats.trace", &d.trace));
  return d;
}

bool SearchStatsDto::operator==(const SearchStatsDto& o) const {
  return iterations == o.iterations && states_expanded == o.states_expanded &&
         rollouts == o.rollouts && elapsed_ms == o.elapsed_ms && trees == o.trees &&
         stop_reason == o.stop_reason && trace == o.trace;
}

// ---------------------------------------------------------------------------
// GenerateResponse / JobStatusResponse.

JsonValue GenerateResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("workload", JsonValue::Str(workload));
  v.Set("algorithm", JsonValue::Str(algorithm));
  v.Set("backend", JsonValue::Str(backend));
  v.Set("coverage", JsonValue::Double(coverage));
  v.Set("cost", cost);
  v.Set("stats", stats.ToJson());
  v.Set("difftree", difftree);
  v.Set("widgets", widgets);
  return v;
}

Result<GenerateResponse> GenerateResponse::FromJson(const JsonValue& v) {
  GenerateResponse g;
  ObjectReader r(v, "GenerateResponse");
  r.String("job_id", &g.job_id);
  r.String("workload", &g.workload);
  r.String("algorithm", &g.algorithm);
  r.String("backend", &g.backend);
  r.Double("coverage", &g.coverage);
  const JsonValue* cost = r.Child("cost");
  const JsonValue* stats = r.Child("stats");
  const JsonValue* difftree = r.Child("difftree");
  const JsonValue* widgets = r.Child("widgets");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (cost != nullptr) g.cost = *cost;
  if (difftree != nullptr) g.difftree = *difftree;
  if (widgets != nullptr) g.widgets = *widgets;
  if (stats != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(g.stats, SearchStatsDto::FromJson(*stats));
  }
  return g;
}

bool GenerateResponse::operator==(const GenerateResponse& o) const {
  return job_id == o.job_id && workload == o.workload && algorithm == o.algorithm &&
         backend == o.backend && coverage == o.coverage && cost == o.cost &&
         stats == o.stats && difftree == o.difftree && widgets == o.widgets;
}

void JobResultDto::AppendToJson(JsonValue* obj, const char* value_field) const {
  if (value.has_value()) obj->Set(value_field, value->ToJson());
  if (error.has_value()) obj->Set("error", error->ToJson());
}

Result<JobResultDto> JobResultDto::FromFields(const JsonValue* value_json,
                                              const JsonValue* error_json) {
  JobResultDto d;
  if (value_json != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(GenerateResponse g,
                           GenerateResponse::FromJson(*value_json));
    d.value = std::move(g);
  }
  if (error_json != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(ErrorBody e, ErrorBody::FromJson(*error_json));
    d.error = std::move(e);
  }
  return d;
}

JsonValue JobStatusResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("state", JsonValue::Str(state));
  v.Set("cache_hit", JsonValue::Bool(cache_hit));
  v.Set("queued_ms", JsonValue::Int(queued_ms));
  v.Set("run_ms", JsonValue::Int(run_ms));
  result.AppendToJson(&v, "result");
  return v;
}

Result<JobStatusResponse> JobStatusResponse::FromJson(const JsonValue& v) {
  JobStatusResponse j;
  ObjectReader r(v, "JobStatusResponse");
  r.String("job_id", &j.job_id, /*required=*/true);
  r.String("state", &j.state, /*required=*/true);
  r.Bool("cache_hit", &j.cache_hit);
  r.Int("queued_ms", &j.queued_ms);
  r.Int("run_ms", &j.run_ms);
  const JsonValue* result = r.Child("result");
  const JsonValue* error = r.Child("error");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_ASSIGN_OR_RETURN(j.result, JobResultDto::FromFields(result, error));
  return j;
}

bool JobStatusResponse::operator==(const JobStatusResponse& o) const {
  return job_id == o.job_id && state == o.state && cache_hit == o.cache_hit &&
         queued_ms == o.queued_ms && run_ms == o.run_ms && result == o.result;
}

JsonValue JobProgressResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("state", JsonValue::Str(state));
  v.Set("version", JsonValue::Int(version));
  v.Set("final", JsonValue::Bool(final_frame));
  result.AppendToJson(&v, "partial");
  return v;
}

Result<JobProgressResponse> JobProgressResponse::FromJson(const JsonValue& v) {
  JobProgressResponse p;
  ObjectReader r(v, "JobProgressResponse");
  r.String("job_id", &p.job_id, /*required=*/true);
  r.String("state", &p.state, /*required=*/true);
  r.Int("version", &p.version);
  r.Bool("final", &p.final_frame);
  const JsonValue* partial = r.Child("partial");
  const JsonValue* error = r.Child("error");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_ASSIGN_OR_RETURN(p.result, JobResultDto::FromFields(partial, error));
  return p;
}

bool JobProgressResponse::operator==(const JobProgressResponse& o) const {
  return job_id == o.job_id && state == o.state && version == o.version &&
         final_frame == o.final_frame && result == o.result;
}

// ---------------------------------------------------------------------------
// Sessions.

JsonValue SessionOpenRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("workload", JsonValue::Str(workload));
  v.Set("backend", JsonValue::Str(backend));
  return v;
}

Result<SessionOpenRequest> SessionOpenRequest::FromJson(const JsonValue& v) {
  SessionOpenRequest s;
  ObjectReader r(v, "SessionOpenRequest");
  r.String("job_id", &s.job_id, /*required=*/true);
  r.String("workload", &s.workload);
  r.String("backend", &s.backend);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return s;
}

TableDto TableDto::FromTable(const Table& t) {
  TableDto d;
  d.columns.reserve(t.num_columns());
  for (const ColumnDef& c : t.schema().columns) d.columns.push_back(c.name);
  d.rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(t.num_columns());
    for (size_t c = 0; c < t.num_columns(); ++c) row.push_back(t.At(r, c));
    d.rows.push_back(std::move(row));
  }
  return d;
}

JsonValue TableDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("columns", StringsToJson(columns));
  v.Set("rows", RowsToJson(rows));
  return v;
}

Result<TableDto> TableDto::FromJson(const JsonValue& v) {
  TableDto t;
  ObjectReader r(v, "Table");
  r.StringArray("columns", &t.columns);
  const JsonValue* rows = r.Child("rows");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_RETURN_NOT_OK(RowsFromJson(rows, "Table", &t.rows));
  for (const std::vector<Value>& row : t.rows) {
    if (row.size() != t.columns.size()) {
      return Status::Invalid("Table: row arity " + std::to_string(row.size()) +
                             " != column count " + std::to_string(t.columns.size()));
    }
  }
  return t;
}

JsonValue SessionOpenResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("session_id", JsonValue::Str(session_id));
  v.Set("sql", JsonValue::Str(sql));
  v.Set("version", JsonValue::Int(version));
  v.Set("table", table.ToJson());
  v.Set("widgets", widgets);
  return v;
}

Result<SessionOpenResponse> SessionOpenResponse::FromJson(const JsonValue& v) {
  SessionOpenResponse s;
  ObjectReader r(v, "SessionOpenResponse");
  r.String("session_id", &s.session_id, /*required=*/true);
  r.String("sql", &s.sql);
  r.Int("version", &s.version);
  const JsonValue* table = r.Child("table");
  const JsonValue* widgets = r.Child("widgets");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (table != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(s.table, TableDto::FromJson(*table));
  }
  if (widgets != nullptr) s.widgets = *widgets;
  return s;
}

bool SessionOpenResponse::operator==(const SessionOpenResponse& o) const {
  return session_id == o.session_id && sql == o.sql && version == o.version &&
         table == o.table && widgets == o.widgets;
}

// ---------------------------------------------------------------------------
// Widget events.

JsonValue WidgetEventRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("kind", JsonValue::Str(kind));
  if (kind == "set_any") {
    v.Set("choice_id", JsonValue::Int(choice_id));
    v.Set("option_index", JsonValue::Int(option_index));
  } else if (kind == "set_opt") {
    v.Set("choice_id", JsonValue::Int(choice_id));
    v.Set("present", JsonValue::Bool(present));
  } else if (kind == "set_multi") {
    v.Set("choice_id", JsonValue::Int(choice_id));
    v.Set("count", JsonValue::Int(count));
  } else if (kind == "load_query") {
    v.Set("sql", JsonValue::Str(sql));
  }
  return v;
}

Result<WidgetEventRequest> WidgetEventRequest::FromJson(const JsonValue& v) {
  WidgetEventRequest e;
  ObjectReader r(v, "WidgetEventRequest");
  r.String("kind", &e.kind, /*required=*/true);
  // Consume exactly the fields the kind allows; anything else trips the
  // unknown-field guard in Finish() — a mis-targeted field is a client bug,
  // not something to ignore.
  if (e.kind == "set_any") {
    r.Int("choice_id", &e.choice_id, /*required=*/true);
    r.Int("option_index", &e.option_index, /*required=*/true);
  } else if (e.kind == "set_opt") {
    r.Int("choice_id", &e.choice_id, /*required=*/true);
    r.Bool("present", &e.present, /*required=*/true);
  } else if (e.kind == "set_multi") {
    r.Int("choice_id", &e.choice_id, /*required=*/true);
    r.Int("count", &e.count, /*required=*/true, 0);
  } else if (e.kind == "load_query") {
    r.String("sql", &e.sql, /*required=*/true);
  } else {
    return Status::Invalid(
        "WidgetEventRequest: unknown kind '" + e.kind +
        "' (expected set_any|set_opt|set_multi|load_query)");
  }
  IFGEN_RETURN_NOT_OK(r.Finish());
  return e;
}

bool WidgetEventRequest::operator==(const WidgetEventRequest& o) const {
  return kind == o.kind && choice_id == o.choice_id &&
         option_index == o.option_index && count == o.count &&
         present == o.present && sql == o.sql;
}

// ---------------------------------------------------------------------------
// Step reports / change feed.

StepReportDto StepReportDto::FromReport(const InteractiveRuntime::StepReport& r) {
  StepReportDto d;
  d.transition = std::string(TransitionClassName(r.transition));
  d.incremental = r.incremental;
  d.from_cache = r.from_cache;
  d.widgets_changed = static_cast<int64_t>(r.widgets_changed);
  d.interaction_cost = r.interaction_cost;
  d.navigation_cost = r.navigation_cost;
  d.rows = static_cast<int64_t>(r.rows);
  d.rows_added = static_cast<int64_t>(r.rows_added);
  d.rows_removed = static_cast<int64_t>(r.rows_removed);
  d.rows_updated = static_cast<int64_t>(r.rows_updated);
  return d;
}

JsonValue StepReportDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("transition", JsonValue::Str(transition));
  v.Set("incremental", JsonValue::Bool(incremental));
  v.Set("from_cache", JsonValue::Bool(from_cache));
  v.Set("widgets_changed", JsonValue::Int(widgets_changed));
  v.Set("interaction_cost", JsonValue::Double(interaction_cost));
  v.Set("navigation_cost", JsonValue::Double(navigation_cost));
  v.Set("rows", JsonValue::Int(rows));
  v.Set("rows_added", JsonValue::Int(rows_added));
  v.Set("rows_removed", JsonValue::Int(rows_removed));
  v.Set("rows_updated", JsonValue::Int(rows_updated));
  return v;
}

Result<StepReportDto> StepReportDto::FromJson(const JsonValue& v) {
  StepReportDto d;
  ObjectReader r(v, "StepReport");
  r.String("transition", &d.transition);
  r.Bool("incremental", &d.incremental);
  r.Bool("from_cache", &d.from_cache);
  r.Int("widgets_changed", &d.widgets_changed);
  r.Double("interaction_cost", &d.interaction_cost);
  r.Double("navigation_cost", &d.navigation_cost);
  r.Int("rows", &d.rows);
  r.Int("rows_added", &d.rows_added);
  r.Int("rows_removed", &d.rows_removed);
  r.Int("rows_updated", &d.rows_updated);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return d;
}

bool StepReportDto::operator==(const StepReportDto& o) const {
  return transition == o.transition && incremental == o.incremental &&
         from_cache == o.from_cache && widgets_changed == o.widgets_changed &&
         interaction_cost == o.interaction_cost &&
         navigation_cost == o.navigation_cost && rows == o.rows &&
         rows_added == o.rows_added && rows_removed == o.rows_removed &&
         rows_updated == o.rows_updated;
}

RowChangeDto RowChangeDto::FromChange(const InteractiveRuntime::RowChange& c) {
  RowChangeDto d;
  switch (c.kind) {
    case InteractiveRuntime::RowChange::Kind::kAdd:
      d.kind = "add";
      break;
    case InteractiveRuntime::RowChange::Kind::kRemove:
      d.kind = "remove";
      break;
    case InteractiveRuntime::RowChange::Kind::kUpdate:
      d.kind = "update";
      break;
  }
  d.row = c.row;
  d.old_row = c.old_row;
  return d;
}

JsonValue RowChangeDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("kind", JsonValue::Str(kind));
  JsonValue jrow = JsonValue::Array();
  for (const Value& cell : row) jrow.Append(ValueToJson(cell));
  v.Set("row", std::move(jrow));
  if (kind == "update") {
    JsonValue jold = JsonValue::Array();
    for (const Value& cell : old_row) jold.Append(ValueToJson(cell));
    v.Set("old_row", std::move(jold));
  }
  return v;
}

Result<RowChangeDto> RowChangeDto::FromJson(const JsonValue& v) {
  RowChangeDto d;
  ObjectReader r(v, "RowChange");
  r.String("kind", &d.kind, /*required=*/true);
  const JsonValue* row = r.Child("row", /*required=*/true);
  const JsonValue* old_row = d.kind == "update" ? r.Child("old_row") : nullptr;
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (d.kind != "add" && d.kind != "remove" && d.kind != "update") {
    return Status::Invalid("RowChange: unknown kind '" + d.kind + "'");
  }
  std::vector<std::vector<Value>> rows;
  if (row != nullptr && row->is_array()) {
    JsonValue wrap = JsonValue::Array();
    wrap.Append(*row);
    IFGEN_RETURN_NOT_OK(RowsFromJson(&wrap, "RowChange", &rows));
    d.row = std::move(rows[0]);
  } else {
    return Status::Invalid("RowChange: 'row' must be an array");
  }
  if (old_row != nullptr) {
    if (!old_row->is_array()) {
      return Status::Invalid("RowChange: 'old_row' must be an array");
    }
    JsonValue wrap = JsonValue::Array();
    wrap.Append(*old_row);
    IFGEN_RETURN_NOT_OK(RowsFromJson(&wrap, "RowChange", &rows));
    d.old_row = std::move(rows[0]);
  }
  return d;
}

ChangeBatchDto ChangeBatchDto::FromBatch(const InteractiveRuntime::ChangeBatch& b) {
  ChangeBatchDto d;
  d.from_version = static_cast<int64_t>(b.from_version);
  d.to_version = static_cast<int64_t>(b.to_version);
  d.last_step = StepReportDto::FromReport(b.last_step);
  d.changes.reserve(b.changes.size());
  for (const InteractiveRuntime::RowChange& c : b.changes) {
    d.changes.push_back(RowChangeDto::FromChange(c));
  }
  return d;
}

JsonValue ChangeBatchDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("from_version", JsonValue::Int(from_version));
  v.Set("to_version", JsonValue::Int(to_version));
  v.Set("last_step", last_step.ToJson());
  v.Set("changes", ArrayToJson(changes));
  return v;
}

Result<ChangeBatchDto> ChangeBatchDto::FromJson(const JsonValue& v) {
  ChangeBatchDto d;
  ObjectReader r(v, "ChangeBatch");
  r.Int("from_version", &d.from_version);
  r.Int("to_version", &d.to_version);
  const JsonValue* last_step = r.Child("last_step");
  const JsonValue* changes = r.Child("changes");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (last_step != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(d.last_step, StepReportDto::FromJson(*last_step));
  }
  IFGEN_RETURN_NOT_OK(ArrayFromJson(changes, "ChangeBatch.changes", &d.changes));
  return d;
}

bool ChangeBatchDto::operator==(const ChangeBatchDto& o) const {
  return from_version == o.from_version && to_version == o.to_version &&
         last_step == o.last_step && changes == o.changes;
}

JsonValue StepResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("session_id", JsonValue::Str(session_id));
  v.Set("sql", JsonValue::Str(sql));
  v.Set("version", JsonValue::Int(version));
  v.Set("report", report.ToJson());
  v.Set("batch", batch.ToJson());
  return v;
}

Result<StepResponse> StepResponse::FromJson(const JsonValue& v) {
  StepResponse s;
  ObjectReader r(v, "StepResponse");
  r.String("session_id", &s.session_id, /*required=*/true);
  r.String("sql", &s.sql);
  r.Int("version", &s.version);
  const JsonValue* report = r.Child("report");
  const JsonValue* batch = r.Child("batch");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (report != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(s.report, StepReportDto::FromJson(*report));
  }
  if (batch != nullptr) {
    IFGEN_ASSIGN_OR_RETURN(s.batch, ChangeBatchDto::FromJson(*batch));
  }
  return s;
}

bool StepResponse::operator==(const StepResponse& o) const {
  return session_id == o.session_id && sql == o.sql && version == o.version &&
         report == o.report && batch == o.batch;
}

// ---------------------------------------------------------------------------
// Introspection.

JsonValue TableInfo::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("name", JsonValue::Str(name));
  v.Set("rows", JsonValue::Int(rows));
  v.Set("columns", JsonValue::Int(columns));
  return v;
}

Result<TableInfo> TableInfo::FromJson(const JsonValue& v) {
  TableInfo t;
  ObjectReader r(v, "TableInfo");
  r.String("name", &t.name, /*required=*/true);
  r.Int("rows", &t.rows);
  r.Int("columns", &t.columns);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return t;
}

JsonValue WorkloadInfo::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("name", JsonValue::Str(name));
  v.Set("queries", JsonValue::Int(queries));
  v.Set("tables", ArrayToJson(tables));
  return v;
}

Result<WorkloadInfo> WorkloadInfo::FromJson(const JsonValue& v) {
  WorkloadInfo w;
  ObjectReader r(v, "WorkloadInfo");
  r.String("name", &w.name, /*required=*/true);
  r.Int("queries", &w.queries);
  const JsonValue* tables = r.Child("tables");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_RETURN_NOT_OK(ArrayFromJson(tables, "WorkloadInfo.tables", &w.tables));
  return w;
}

bool WorkloadInfo::operator==(const WorkloadInfo& o) const {
  return name == o.name && queries == o.queries && tables == o.tables;
}

JsonValue CatalogResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("workloads", ArrayToJson(workloads));
  v.Set("backends", StringsToJson(backends));
  return v;
}

Result<CatalogResponse> CatalogResponse::FromJson(const JsonValue& v) {
  CatalogResponse c;
  ObjectReader r(v, "CatalogResponse");
  const JsonValue* workloads = r.Child("workloads");
  r.StringArray("backends", &c.backends);
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_RETURN_NOT_OK(
      ArrayFromJson(workloads, "CatalogResponse.workloads", &c.workloads));
  return c;
}

JsonValue BackendStatsDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("workload", JsonValue::Str(workload));
  v.Set("backend", JsonValue::Str(backend));
  v.Set("prepares", JsonValue::Int(prepares));
  v.Set("plan_cache_hits", JsonValue::Int(plan_cache_hits));
  v.Set("executions", JsonValue::Int(executions));
  return v;
}

Result<BackendStatsDto> BackendStatsDto::FromJson(const JsonValue& v) {
  BackendStatsDto b;
  ObjectReader r(v, "BackendStats");
  r.String("workload", &b.workload);
  r.String("backend", &b.backend, /*required=*/true);
  r.Int("prepares", &b.prepares);
  r.Int("plan_cache_hits", &b.plan_cache_hits);
  r.Int("executions", &b.executions);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return b;
}

bool BackendStatsDto::operator==(const BackendStatsDto& o) const {
  return workload == o.workload && backend == o.backend && prepares == o.prepares &&
         plan_cache_hits == o.plan_cache_hits && executions == o.executions;
}

JsonValue WorkerStatsDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("worker", JsonValue::Int(worker));
  v.Set("address", JsonValue::Str(address));
  v.Set("healthy", JsonValue::Bool(healthy));
  v.Set("draining", JsonValue::Bool(draining));
  v.Set("jobs_submitted", JsonValue::Int(jobs_submitted));
  v.Set("jobs_executed", JsonValue::Int(jobs_executed));
  v.Set("jobs_pending", JsonValue::Int(jobs_pending));
  v.Set("sessions_active", JsonValue::Int(sessions_active));
  v.Set("rpcs", JsonValue::Int(rpcs));
  v.Set("rpc_failures", JsonValue::Int(rpc_failures));
  v.Set("reconnects", JsonValue::Int(reconnects));
  v.Set("cache_probes", JsonValue::Int(cache_probes));
  v.Set("cache_probe_hits", JsonValue::Int(cache_probe_hits));
  v.Set("tt_peer_ingested", JsonValue::Int(tt_peer_ingested));
  v.Set("tt_peer_hits", JsonValue::Int(tt_peer_hits));
  v.Set("result_peer_hits", JsonValue::Int(result_peer_hits));
  v.Set("tt_published", JsonValue::Int(tt_published));
  return v;
}

Result<WorkerStatsDto> WorkerStatsDto::FromJson(const JsonValue& v) {
  WorkerStatsDto w;
  ObjectReader r(v, "WorkerStatsDto");
  r.Int("worker", &w.worker, /*required=*/true, 0);
  r.String("address", &w.address, /*required=*/true);
  r.Bool("healthy", &w.healthy);
  r.Bool("draining", &w.draining);
  r.Int("jobs_submitted", &w.jobs_submitted);
  r.Int("jobs_executed", &w.jobs_executed);
  r.Int("jobs_pending", &w.jobs_pending);
  r.Int("sessions_active", &w.sessions_active);
  r.Int("rpcs", &w.rpcs);
  r.Int("rpc_failures", &w.rpc_failures);
  r.Int("reconnects", &w.reconnects);
  r.Int("cache_probes", &w.cache_probes);
  r.Int("cache_probe_hits", &w.cache_probe_hits);
  r.Int("tt_peer_ingested", &w.tt_peer_ingested);
  r.Int("tt_peer_hits", &w.tt_peer_hits);
  r.Int("result_peer_hits", &w.result_peer_hits);
  r.Int("tt_published", &w.tt_published);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return w;
}

bool WorkerStatsDto::operator==(const WorkerStatsDto& o) const {
  return worker == o.worker && address == o.address && healthy == o.healthy &&
         draining == o.draining && jobs_submitted == o.jobs_submitted &&
         jobs_executed == o.jobs_executed && jobs_pending == o.jobs_pending &&
         sessions_active == o.sessions_active && rpcs == o.rpcs &&
         rpc_failures == o.rpc_failures && reconnects == o.reconnects &&
         cache_probes == o.cache_probes &&
         cache_probe_hits == o.cache_probe_hits &&
         tt_peer_ingested == o.tt_peer_ingested &&
         tt_peer_hits == o.tt_peer_hits &&
         result_peer_hits == o.result_peer_hits &&
         tt_published == o.tt_published;
}

JsonValue ClusterResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("mode", JsonValue::Str(mode));
  v.Set("workers", ArrayToJson(workers));
  return v;
}

Result<ClusterResponse> ClusterResponse::FromJson(const JsonValue& v) {
  ClusterResponse c;
  ObjectReader r(v, "ClusterResponse");
  r.String("mode", &c.mode, /*required=*/true);
  const JsonValue* workers = r.Child("workers");
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_RETURN_NOT_OK(
      ArrayFromJson(workers, "ClusterResponse.workers", &c.workers));
  return c;
}

JsonValue StatsResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  JsonValue jobs = JsonValue::Object();
  jobs.Set("submitted", JsonValue::Int(jobs_submitted));
  jobs.Set("executed", JsonValue::Int(jobs_executed));
  jobs.Set("pending", JsonValue::Int(jobs_pending));
  jobs.Set("cache_hits", JsonValue::Int(job_cache_hits));
  v.Set("jobs", std::move(jobs));
  JsonValue sessions = JsonValue::Object();
  sessions.Set("opened", JsonValue::Int(sessions_opened));
  sessions.Set("active", JsonValue::Int(sessions_active));
  sessions.Set("expired", JsonValue::Int(sessions_expired));
  v.Set("sessions", std::move(sessions));
  JsonValue runtime = JsonValue::Object();
  runtime.Set("steps", JsonValue::Int(steps));
  runtime.Set("noops", JsonValue::Int(noops));
  runtime.Set("result_cache_hits", JsonValue::Int(result_cache_hits));
  runtime.Set("delta_execs", JsonValue::Int(delta_execs));
  runtime.Set("retruncates", JsonValue::Int(retruncates));
  runtime.Set("full_execs", JsonValue::Int(full_execs));
  runtime.Set("fallbacks", JsonValue::Int(fallbacks));
  v.Set("runtime", std::move(runtime));
  v.Set("backends", ArrayToJson(backends));
  JsonValue learn = JsonValue::Object();
  learn.Set("store_entries", JsonValue::Int(learn_store_entries));
  learn.Set("hits", JsonValue::Int(learn_hits));
  learn.Set("misses", JsonValue::Int(learn_misses));
  learn.Set("seeded", JsonValue::Int(learn_seeded));
  learn.Set("recorded", JsonValue::Int(learn_recorded));
  learn.Set("saves", JsonValue::Int(learn_saves));
  learn.Set("loads", JsonValue::Int(learn_loads));
  v.Set("learn", std::move(learn));
  JsonValue cluster = JsonValue::Object();
  cluster.Set("workers", ArrayToJson(cluster_workers));
  v.Set("cluster", std::move(cluster));
  return v;
}

Result<StatsResponse> StatsResponse::FromJson(const JsonValue& v) {
  StatsResponse s;
  ObjectReader r(v, "StatsResponse");
  const JsonValue* jobs = r.Child("jobs");
  const JsonValue* sessions = r.Child("sessions");
  const JsonValue* runtime = r.Child("runtime");
  const JsonValue* backends = r.Child("backends");
  const JsonValue* learn = r.Child("learn");
  const JsonValue* cluster = r.Child("cluster");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (learn != nullptr) {
    ObjectReader lr(*learn, "StatsResponse.learn");
    lr.Int("store_entries", &s.learn_store_entries);
    lr.Int("hits", &s.learn_hits);
    lr.Int("misses", &s.learn_misses);
    lr.Int("seeded", &s.learn_seeded);
    lr.Int("recorded", &s.learn_recorded);
    lr.Int("saves", &s.learn_saves);
    lr.Int("loads", &s.learn_loads);
    IFGEN_RETURN_NOT_OK(lr.Finish());
  }
  if (cluster != nullptr) {
    ObjectReader cr(*cluster, "StatsResponse.cluster");
    const JsonValue* workers = cr.Child("workers");
    IFGEN_RETURN_NOT_OK(cr.Finish());
    IFGEN_RETURN_NOT_OK(ArrayFromJson(workers, "StatsResponse.cluster.workers",
                                      &s.cluster_workers));
  }
  if (jobs != nullptr) {
    ObjectReader jr(*jobs, "StatsResponse.jobs");
    jr.Int("submitted", &s.jobs_submitted);
    jr.Int("executed", &s.jobs_executed);
    jr.Int("pending", &s.jobs_pending);
    jr.Int("cache_hits", &s.job_cache_hits);
    IFGEN_RETURN_NOT_OK(jr.Finish());
  }
  if (sessions != nullptr) {
    ObjectReader sr(*sessions, "StatsResponse.sessions");
    sr.Int("opened", &s.sessions_opened);
    sr.Int("active", &s.sessions_active);
    sr.Int("expired", &s.sessions_expired);
    IFGEN_RETURN_NOT_OK(sr.Finish());
  }
  if (runtime != nullptr) {
    ObjectReader rr(*runtime, "StatsResponse.runtime");
    rr.Int("steps", &s.steps);
    rr.Int("noops", &s.noops);
    rr.Int("result_cache_hits", &s.result_cache_hits);
    rr.Int("delta_execs", &s.delta_execs);
    rr.Int("retruncates", &s.retruncates);
    rr.Int("full_execs", &s.full_execs);
    rr.Int("fallbacks", &s.fallbacks);
    IFGEN_RETURN_NOT_OK(rr.Finish());
  }
  IFGEN_RETURN_NOT_OK(ArrayFromJson(backends, "StatsResponse.backends", &s.backends));
  return s;
}

bool StatsResponse::operator==(const StatsResponse& o) const {
  return jobs_submitted == o.jobs_submitted && jobs_executed == o.jobs_executed &&
         jobs_pending == o.jobs_pending && job_cache_hits == o.job_cache_hits &&
         sessions_opened == o.sessions_opened &&
         sessions_active == o.sessions_active &&
         sessions_expired == o.sessions_expired && steps == o.steps &&
         noops == o.noops && result_cache_hits == o.result_cache_hits &&
         delta_execs == o.delta_execs && retruncates == o.retruncates &&
         full_execs == o.full_execs && fallbacks == o.fallbacks &&
         backends == o.backends &&
         learn_store_entries == o.learn_store_entries &&
         learn_hits == o.learn_hits && learn_misses == o.learn_misses &&
         learn_seeded == o.learn_seeded && learn_recorded == o.learn_recorded &&
         learn_saves == o.learn_saves && learn_loads == o.learn_loads &&
         cluster_workers == o.cluster_workers;
}

}  // namespace api
}  // namespace ifgen
