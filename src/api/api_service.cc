#include "api/api_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/json_export.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace ifgen {
namespace api {

namespace {

void FoldCounters(const InteractiveRuntime::Counters& from,
                  InteractiveRuntime::Counters* into) {
  into->steps += from.steps;
  into->noops += from.noops;
  into->cache_hits += from.cache_hits;
  into->delta_execs += from.delta_execs;
  into->retruncates += from.retruncates;
  into->full_execs += from.full_execs;
  into->fallbacks += from.fallbacks;
}

obs::Counter& SessionsExpiredMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_sessions_expired_total",
      "Sessions evicted by TTL or the capacity bound");
  return *c;
}
obs::Gauge& SessionsActiveMetric() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "ifgen_sessions_active", "Open interactive sessions");
  return *g;
}

}  // namespace

ApiService::ApiService(Options opts) : opts_(opts), service_(opts.service) {}

Result<std::unique_ptr<ApiService>> ApiService::Create(Options opts) {
  std::unique_ptr<ApiService> svc(new ApiService(opts));
  IFGEN_RETURN_NOT_OK(svc->LoadWorkloads());
  return svc;
}

Status ApiService::LoadWorkloads() {
  for (const std::string& name : WorkloadNames()) {
    auto bundle = LoadWorkload(name, opts_.workload_rows);
    if (!bundle.ok()) return bundle.status();
    workloads_[name] =
        std::make_unique<WorkloadBundle>(std::move(bundle).MoveValueUnsafe());
  }
  if (workloads_.empty()) return Status::Internal("no workloads registered");
  return Status::OK();
}

Result<GenerationService::JobId> ApiService::ParseJobId(
    const std::string& job_id) const {
  if (job_id.size() < 3 || job_id.compare(0, 2, "j-") != 0) {
    return Status::Invalid("malformed job id '" + job_id + "' (expected j-<n>)");
  }
  uint64_t id = 0;
  for (size_t i = 2; i < job_id.size(); ++i) {
    char c = job_id[i];
    if (c < '0' || c > '9') {
      return Status::Invalid("malformed job id '" + job_id + "' (expected j-<n>)");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    // Overflow guard: a wrapped id would alias a *different* job.
    if (id > (UINT64_MAX - digit) / 10) {
      return Status::Invalid("malformed job id '" + job_id + "' (out of range)");
    }
    id = id * 10 + digit;
  }
  return id;
}

Result<const WorkloadBundle*> ApiService::FindWorkload(
    const std::string& name) const {
  auto it = workloads_.find(name);
  if (it == workloads_.end()) {
    return Status::NotFound("unknown workload '" + name + "'");
  }
  return const_cast<const WorkloadBundle*>(it->second.get());
}

// ---------------------------------------------------------------------------
// Jobs.

Result<GenerateAccepted> ApiService::SubmitGenerate(const GenerateRequest& req) {
  IFGEN_ASSIGN_OR_RETURN(GeneratorOptions options, req.options.ToGeneratorOptions());
  if (!opts_.learned_prior_weights.empty()) {
    options.search.priors.learned_weights = opts_.learned_prior_weights;
  }
  if (!BackendAvailable(options.backend)) {
    return Status::Invalid("backend '" + req.options.backend +
                           "' is not compiled into this build");
  }
  if (req.workload.empty() && req.sqls.empty()) {
    return Status::Invalid("GenerateRequest: either 'workload' or 'sqls' required");
  }
  const WorkloadBundle* bundle = nullptr;
  if (!req.workload.empty()) {
    IFGEN_ASSIGN_OR_RETURN(bundle, FindWorkload(req.workload));
  }
  JobSpec spec;
  spec.sqls = req.sqls.empty() ? bundle->log : req.sqls;
  spec.options = options;
  // mu_ is held across submit + meta insert: a cache-hit job is kDone the
  // moment SubmitJob returns, and every meta reader (BuildJobStatus,
  // OpenSession) locks mu_ — so no reader can observe the job without its
  // meta. Lock order mu_ -> service mutex, consistent with the eviction
  // scan below; the service never calls back into ApiService.
  GenerationService::JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IFGEN_ASSIGN_OR_RETURN(id, service_.SubmitJob(std::move(spec)));
    job_meta_[id] = JobMeta{req.workload, options};
    // Keep meta bounded alongside the service's finished-job history, but
    // never drop a still-pending job's meta (admission may be unbounded).
    // Mirror the service's own (finished-order) eviction: drop meta exactly
    // for jobs the service no longer knows — evicting lowest-id terminal
    // jobs instead would desync the two (a slow early job can outlive many
    // later ones in the service history, and losing its meta while it is
    // still queryable blanks workload/backend in its JobStatusResponse).
    const size_t cap = opts_.service.job_history_capacity +
                       std::max<size_t>(1, service_.jobs_pending());
    auto it = job_meta_.begin();
    while (job_meta_.size() > cap && it != job_meta_.end()) {
      if (!service_.GetJob(it->first).ok()) {
        it = job_meta_.erase(it);
      } else {
        ++it;
      }
    }
    // Fallback bound (pending count can shrink between submissions): shed
    // oldest terminal metas so job_meta_ cannot outgrow cap indefinitely.
    it = job_meta_.begin();
    while (job_meta_.size() > cap && it != job_meta_.end()) {
      auto info = service_.GetJob(it->first);
      if (!info.ok() || info->terminal()) {
        it = job_meta_.erase(it);
      } else {
        ++it;
      }
    }
  }
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobInfo info, service_.GetJob(id));
  GenerateAccepted accepted;
  accepted.job_id = "j-" + std::to_string(id);
  accepted.state = std::string(JobStateName(info.state));
  return accepted;
}

Result<bool> ApiService::ProbeCache(const GenerateRequest& req) {
  IFGEN_ASSIGN_OR_RETURN(GeneratorOptions options, req.options.ToGeneratorOptions());
  if (!opts_.learned_prior_weights.empty()) {
    options.search.priors.learned_weights = opts_.learned_prior_weights;
  }
  if (req.workload.empty() && req.sqls.empty()) {
    return Status::Invalid("GenerateRequest: either 'workload' or 'sqls' required");
  }
  // A backend or workload this worker cannot serve is simply "no hit" — the
  // prober is looking for a cached result, not validating the request.
  if (!BackendAvailable(options.backend)) return false;
  const WorkloadBundle* bundle = nullptr;
  if (!req.workload.empty()) {
    auto found = FindWorkload(req.workload);
    if (!found.ok()) return false;
    bundle = *found;
  }
  JobSpec spec;
  spec.sqls = req.sqls.empty() ? bundle->log : req.sqls;
  spec.options = std::move(options);
  return service_.CachePeek(GenerationService::JobKey(spec));
}

GenerateResponse ApiService::BuildGenerateResponse(GenerationService::JobId id,
                                                   const GeneratedInterface& iface,
                                                   const JobMeta& meta) const {
  GenerateResponse g;
  g.job_id = "j-" + std::to_string(id);
  g.workload = meta.workload;
  g.algorithm = iface.algorithm;
  g.backend = std::string(BackendKindName(meta.options.backend));
  g.coverage = iface.coverage;
  g.cost = CostToJsonValue(iface.cost);
  g.difftree = DiffTreeToJsonValue(iface.difftree);
  g.widgets = WidgetTreeToJsonValue(iface.widgets);
  g.stats = SearchStatsDto::FromStats(iface.stats);
  return g;
}

JobStatusResponse ApiService::BuildJobStatus(const GenerationService::JobInfo& info) {
  JobStatusResponse resp;
  resp.job_id = "j-" + std::to_string(info.id);
  resp.state = std::string(JobStateName(info.state));
  resp.cache_hit = info.cache_hit;
  resp.queued_ms = info.queued_ms;
  resp.run_ms = info.run_ms;
  // kDone carries the full result; kCancelled may carry the best-so-far
  // partial of a mid-run abort. The error (Cancelled/Failed) is reported
  // alongside the partial, not instead of it.
  if (info.result != nullptr &&
      (info.state == JobState::kDone || info.state == JobState::kCancelled)) {
    JobMeta meta;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = job_meta_.find(info.id);
      if (it != job_meta_.end()) meta = it->second;
    }
    resp.result.value = BuildGenerateResponse(info.id, *info.result, meta);
  }
  if (!info.error.ok()) {
    resp.result.error = ErrorBody::FromStatus(info.error);
  }
  return resp;
}

Result<JobStatusResponse> ApiService::GetJob(const std::string& job_id,
                                             int64_t wait_ms) {
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobId id, ParseJobId(job_id));
  GenerationService::JobInfo info;
  if (wait_ms > 0) {
    IFGEN_ASSIGN_OR_RETURN(info, service_.WaitJob(id, wait_ms));
  } else {
    IFGEN_ASSIGN_OR_RETURN(info, service_.GetJob(id));
  }
  return BuildJobStatus(info);
}

Result<JobStatusResponse> ApiService::CancelJob(const std::string& job_id) {
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobId id, ParseJobId(job_id));
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobInfo info, service_.CancelJob(id));
  return BuildJobStatus(info);
}

Result<JobProgressResponse> ApiService::GetJobProgress(const std::string& job_id,
                                                       int64_t last_seen_version,
                                                       int64_t wait_ms) {
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobId id, ParseJobId(job_id));
  const uint64_t last_seen =
      last_seen_version > 0 ? static_cast<uint64_t>(last_seen_version) : 0;
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobProgress p,
                         service_.GetJobProgress(id, last_seen, wait_ms));
  JobProgressResponse resp;
  resp.job_id = "j-" + std::to_string(id);
  resp.state = std::string(JobStateName(p.state));
  resp.version = static_cast<int64_t>(p.version);
  resp.final_frame = p.terminal;
  JobMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = job_meta_.find(id);
    if (it != job_meta_.end()) meta = it->second;
  }
  if (p.terminal) {
    // Terminal frame: embed the finished (or cancelled-partial) result and
    // any failure — as in GetJob — so a stream consumer never needs a
    // follow-up GetJob to learn how the job ended.
    auto info = service_.GetJob(id);
    if (info.ok() && info->result != nullptr) {
      resp.result.value = BuildGenerateResponse(id, *info->result, meta);
    }
    if (info.ok() && !info->error.ok()) {
      resp.result.error = ErrorBody::FromStatus(info->error);
    }
  } else if (p.version > 0 && p.best_tree != nullptr) {
    // Mid-run frame: the best-so-far difftree without the widget phase —
    // layout and the full cost decomposition only exist once search ends,
    // so the cost object carries just the scalar being minimized.
    GenerateResponse g;
    g.job_id = resp.job_id;
    g.workload = meta.workload;
    g.algorithm = std::string(AlgorithmName(meta.options.algorithm));
    g.backend = std::string(BackendKindName(meta.options.backend));
    JsonValue cost = JsonValue::Object();
    cost.Set("total", JsonValue::Double(p.best_cost));
    g.cost = std::move(cost);
    g.difftree = DiffTreeToJsonValue(*p.best_tree);
    g.stats.iterations = static_cast<int64_t>(p.iteration);
    g.stats.elapsed_ms = p.ms;
    resp.result.value = std::move(g);
  }
  return resp;
}

Result<std::string> ApiService::JobTrace(const std::string& job_id) {
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobId id, ParseJobId(job_id));
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobInfo info, service_.GetJob(id));
  if (info.trace == nullptr) {
    return Status::NotFound("no trace captured for job " + job_id +
                            " (enable tracing before submitting, e.g. serve_http "
                            "--trace, and note cache hits skip execution)");
  }
  return info.trace->ToChromeTraceJson();
}

// ---------------------------------------------------------------------------
// Sessions.

void ApiService::SweepSessionsLocked() {
  if (opts_.session_ttl_ms <= 0) return;
  const auto now = Clock::now();
  // Runs on every session access (including 15 ms SSE re-polls), so bound
  // the O(sessions) scan: at most one sweep per ttl/10. Expiry is already
  // lazy, so a session lingering up to 1.1*ttl changes nothing observable.
  const auto interval =
      std::chrono::milliseconds(std::max<int64_t>(1, opts_.session_ttl_ms / 10));
  if (now - last_sweep_ < interval) return;
  last_sweep_ = now;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const int64_t idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                now - it->second.last_touch)
                                .count();
    if (idle_ms > opts_.session_ttl_ms) {
      FoldCounters(it->second.runtime->counters(), &retired_counters_);
      ++sessions_expired_;
      SessionsExpiredMetric().Inc();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  SessionsActiveMetric().Set(static_cast<double>(sessions_.size()));
}

Result<ApiService::SessionEntry*> ApiService::TouchSessionLocked(
    const std::string& session_id) {
  SweepSessionsLocked();
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session '" + session_id +
                            "' (expired or never opened)");
  }
  it->second.last_touch = Clock::now();
  return &it->second;
}

Result<SessionOpenResponse> ApiService::OpenSession(const SessionOpenRequest& req) {
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobId id, ParseJobId(req.job_id));
  IFGEN_ASSIGN_OR_RETURN(GenerationService::JobInfo info, service_.GetJob(id));
  if (info.state != JobState::kDone || info.result == nullptr) {
    return Status::Invalid("job " + req.job_id + " is not done (state: " +
                           std::string(JobStateName(info.state)) +
                           "); sessions require a finished job");
  }
  JobMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = job_meta_.find(id);
    if (it != job_meta_.end()) meta = it->second;
  }
  const std::string workload_name =
      !req.workload.empty() ? req.workload : meta.workload;
  if (workload_name.empty()) {
    return Status::Invalid(
        "no workload: the job was submitted with raw sqls; pass 'workload' in "
        "SessionOpenRequest to pick the store to execute against");
  }
  IFGEN_ASSIGN_OR_RETURN(const WorkloadBundle* bundle, FindWorkload(workload_name));
  BackendKind kind = meta.options.backend;
  if (!req.backend.empty()) {
    // Reuse the options validator for the name -> kind mapping.
    ApiOptions probe;
    probe.backend = req.backend;
    IFGEN_ASSIGN_OR_RETURN(GeneratorOptions parsed, probe.ToGeneratorOptions());
    kind = parsed.backend;
  }
  if (!BackendAvailable(kind)) {
    return Status::Invalid("backend '" + std::string(BackendKindName(kind)) +
                           "' is not compiled into this build");
  }
  IFGEN_ASSIGN_OR_RETURN(
      std::shared_ptr<InteractiveRuntime> runtime,
      service_.OpenSession(*info.result, meta.options.constants, &bundle->db, kind,
                           opts_.runtime));

  SessionOpenResponse resp;
  Table snapshot;
  SessionEntry entry;
  entry.runtime = runtime;
  entry.feed_sub = runtime->Subscribe(&snapshot);
  entry.event_sub = runtime->Subscribe();
  entry.workload = workload_name;
  entry.last_touch = Clock::now();

  IFGEN_ASSIGN_OR_RETURN(std::string sql, runtime->CurrentSql());
  resp.sql = std::move(sql);
  resp.version = static_cast<int64_t>(runtime->version());
  resp.table = TableDto::FromTable(snapshot);
  resp.widgets = WidgetTreeToJsonValue(info.result->widgets);

  std::lock_guard<std::mutex> lock(mu_);
  SweepSessionsLocked();
  // Capacity eviction: drop the least-recently-touched session.
  while (sessions_.size() >= std::max<size_t>(1, opts_.max_sessions)) {
    auto lru = std::min_element(sessions_.begin(), sessions_.end(),
                                [](const auto& a, const auto& b) {
                                  return a.second.last_touch < b.second.last_touch;
                                });
    FoldCounters(lru->second.runtime->counters(), &retired_counters_);
    ++sessions_expired_;
    SessionsExpiredMetric().Inc();
    sessions_.erase(lru);
  }
  resp.session_id = "s-" + std::to_string(next_session_++);
  sessions_[resp.session_id] = std::move(entry);
  SessionsActiveMetric().Set(static_cast<double>(sessions_.size()));
  return resp;
}

Result<StepResponse> ApiService::ApplyEvent(const std::string& session_id,
                                            const WidgetEventRequest& event) {
  std::shared_ptr<InteractiveRuntime> runtime;
  InteractiveRuntime::SubscriberId event_sub = 0;
  std::shared_ptr<std::mutex> step_mu;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IFGEN_ASSIGN_OR_RETURN(SessionEntry * entry, TouchSessionLocked(session_id));
    runtime = entry->runtime;
    event_sub = entry->event_sub;
    step_mu = entry->step_mu;
  }

  // Bounds-check before narrowing: a wire int64 outside int range must be
  // rejected, not wrapped onto a different (valid) widget id.
  constexpr int64_t kMaxId = std::numeric_limits<int>::max();
  if (event.kind != "load_query" &&
      (event.choice_id < 0 || event.choice_id > kMaxId)) {
    return Status::OutOfRange("choice_id " + std::to_string(event.choice_id) +
                              " outside [0, " + std::to_string(kMaxId) + "]");
  }
  if (event.kind == "set_any" &&
      (event.option_index < 0 || event.option_index > kMaxId)) {
    return Status::OutOfRange("option_index " + std::to_string(event.option_index) +
                              " outside [0, " + std::to_string(kMaxId) + "]");
  }
  // `count` sizes an allocation downstream, so it gets the tighter domain
  // cap (not just the int range): InterfaceSession::SetMultiCount enforces
  // the same bound as defense in depth.
  constexpr int64_t kMaxCount =
      static_cast<int64_t>(InterfaceSession::kMaxMultiCount);
  if (event.kind == "set_multi" &&
      (event.count < 0 || event.count > kMaxCount)) {
    return Status::OutOfRange("count " + std::to_string(event.count) +
                              " outside [0, " + std::to_string(kMaxCount) + "]");
  }

  // Step + drain must be atomic per session: without the lock a concurrent
  // event's drain lands between this step and its Poll, so one response
  // carries both steps' diffs and the other an empty batch.
  std::lock_guard<std::mutex> step_lock(*step_mu);
  Result<InteractiveRuntime::StepReport> report = Status::OK();
  const int choice = static_cast<int>(event.choice_id);
  if (event.kind == "set_any") {
    report = runtime->SetAnyChoice(choice, static_cast<int>(event.option_index));
  } else if (event.kind == "set_opt") {
    report = runtime->SetOptPresent(choice, event.present);
  } else if (event.kind == "set_multi") {
    report = runtime->SetMultiCount(choice, static_cast<size_t>(event.count));
  } else if (event.kind == "load_query") {
    IFGEN_ASSIGN_OR_RETURN(Ast query, ParseQuery(event.sql));
    report = runtime->LoadQuery(query);
  } else {
    return Status::Invalid("unknown event kind '" + event.kind + "'");
  }
  if (!report.ok()) return report.status();

  IFGEN_ASSIGN_OR_RETURN(InteractiveRuntime::ChangeBatch batch,
                         runtime->Poll(event_sub));
  IFGEN_ASSIGN_OR_RETURN(std::string sql, runtime->CurrentSql());

  StepResponse resp;
  resp.session_id = session_id;
  resp.sql = std::move(sql);
  resp.version = static_cast<int64_t>(batch.to_version);
  resp.report = StepReportDto::FromReport(*report);
  resp.batch = ChangeBatchDto::FromBatch(batch);
  return resp;
}

Result<ChangeBatchDto> ApiService::PollSession(const std::string& session_id,
                                               int64_t wait_ms) {
  std::shared_ptr<InteractiveRuntime> runtime;
  InteractiveRuntime::SubscriberId feed_sub = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IFGEN_ASSIGN_OR_RETURN(SessionEntry * entry, TouchSessionLocked(session_id));
    runtime = entry->runtime;
    feed_sub = entry->feed_sub;
  }
  IFGEN_ASSIGN_OR_RETURN(InteractiveRuntime::ChangeBatch batch,
                         runtime->Poll(feed_sub));
  if (wait_ms > 0 && batch.to_version == batch.from_version) {
    // Nothing pending: park on the runtime's version condvar (no busy
    // polling) and re-drain whatever the wait uncovered — possibly still
    // nothing, which is the long-poll timeout answer.
    runtime->WaitForVersionExceeding(batch.to_version, wait_ms);
    IFGEN_ASSIGN_OR_RETURN(batch, runtime->Poll(feed_sub));
  }
  return ChangeBatchDto::FromBatch(batch);
}

Result<TableDto> ApiService::SessionTable(const std::string& session_id) {
  std::shared_ptr<InteractiveRuntime> runtime;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IFGEN_ASSIGN_OR_RETURN(SessionEntry * entry, TouchSessionLocked(session_id));
    runtime = entry->runtime;
  }
  IFGEN_ASSIGN_OR_RETURN(Table table, runtime->CurrentResult());
  return TableDto::FromTable(table);
}

Status ApiService::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session '" + session_id + "'");
  }
  FoldCounters(it->second.runtime->counters(), &retired_counters_);
  sessions_.erase(it);
  SessionsActiveMetric().Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

size_t ApiService::sessions_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Introspection.

Result<CatalogResponse> ApiService::Catalog() {
  CatalogResponse resp;
  for (const auto& [name, bundle] : workloads_) {
    WorkloadInfo info;
    info.name = name;
    info.queries = static_cast<int64_t>(bundle->log.size());
    for (const TableSchema& schema : bundle->db.catalog().tables()) {
      TableInfo t;
      t.name = schema.name;
      t.columns = static_cast<int64_t>(schema.columns.size());
      auto table = bundle->db.GetTable(schema.name);
      t.rows = table.ok() ? static_cast<int64_t>((*table)->num_rows()) : 0;
      info.tables.push_back(std::move(t));
    }
    resp.workloads.push_back(std::move(info));
  }
  for (BackendKind kind : AvailableBackends()) {
    resp.backends.push_back(std::string(BackendKindName(kind)));
  }
  return resp;
}

Result<StatsResponse> ApiService::Stats() {
  StatsResponse s;
  // One locked snapshot instead of five separately-locked reads: the job
  // numbers in a single /v1/stats response are mutually consistent.
  const GenerationService::CountersSnapshot svc = service_.counters_snapshot();
  s.jobs_submitted = static_cast<int64_t>(svc.jobs_submitted);
  s.jobs_executed = static_cast<int64_t>(svc.jobs_executed);
  s.jobs_pending = static_cast<int64_t>(svc.jobs_pending);
  s.job_cache_hits = static_cast<int64_t>(svc.cache_hits);
  s.sessions_opened = static_cast<int64_t>(svc.sessions_opened);
  s.learn_store_entries = static_cast<int64_t>(svc.learn_store_entries);
  s.learn_hits = static_cast<int64_t>(svc.learn_hits);
  s.learn_misses = static_cast<int64_t>(svc.learn_misses);
  s.learn_seeded = static_cast<int64_t>(svc.learn_seeded);
  s.learn_recorded = static_cast<int64_t>(svc.learn_recorded);
  s.learn_saves = static_cast<int64_t>(svc.learn_saves);
  s.learn_loads = static_cast<int64_t>(svc.learn_loads);

  InteractiveRuntime::Counters agg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions_active = static_cast<int64_t>(sessions_.size());
    s.sessions_expired = static_cast<int64_t>(sessions_expired_);
    agg = retired_counters_;
    for (const auto& [id, entry] : sessions_) {
      FoldCounters(entry.runtime->counters(), &agg);
    }
  }
  s.steps = static_cast<int64_t>(agg.steps);
  s.noops = static_cast<int64_t>(agg.noops);
  s.result_cache_hits = static_cast<int64_t>(agg.cache_hits);
  s.delta_execs = static_cast<int64_t>(agg.delta_execs);
  s.retruncates = static_cast<int64_t>(agg.retruncates);
  s.full_execs = static_cast<int64_t>(agg.full_execs);
  s.fallbacks = static_cast<int64_t>(agg.fallbacks);

  // Backend pointer -> workload name, for readable stats rows.
  std::map<const Database*, std::string> names;
  for (const auto& [name, bundle] : workloads_) names[&bundle->db] = name;
  for (const GenerationService::BackendStatEntry& e : service_.backend_stats()) {
    BackendStatsDto dto;
    auto it = names.find(e.db);
    dto.workload = it != names.end() ? it->second : "?";
    dto.backend = std::string(BackendKindName(e.kind));
    dto.prepares = static_cast<int64_t>(e.stats.prepares);
    dto.plan_cache_hits = static_cast<int64_t>(e.stats.plan_cache_hits);
    dto.executions = static_cast<int64_t>(e.stats.executions);
    s.backends.push_back(std::move(dto));
  }
  return s;
}

Result<ClusterResponse> ApiService::Cluster() {
  ClusterResponse c;
  c.mode = "single";
  return c;
}

}  // namespace api
}  // namespace ifgen
