#include "api/rpc.h"

namespace ifgen {
namespace api {

JsonValue RpcEnvelope::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("api_version", JsonValue::Str(api_version));
  v.Set("method", JsonValue::Str(method));
  v.Set("request_id", JsonValue::Int(request_id));
  v.Set("payload", payload);
  return v;
}

Result<RpcEnvelope> RpcEnvelope::FromJson(const JsonValue& v) {
  RpcEnvelope e;
  ObjectReader r(v, "RpcEnvelope");
  r.String("api_version", &e.api_version, /*required=*/true);
  r.String("method", &e.method, /*required=*/true);
  r.Int("request_id", &e.request_id);
  const JsonValue* payload = r.Child("payload");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (payload != nullptr) {
    if (!payload->is_object()) {
      return Status::Invalid("RpcEnvelope.payload must be an object");
    }
    e.payload = *payload;
  }
  return e;
}

RpcReply RpcReply::Success(int64_t request_id, JsonValue payload) {
  RpcReply r;
  r.request_id = request_id;
  r.ok = true;
  r.payload = std::move(payload);
  return r;
}

RpcReply RpcReply::Failure(int64_t request_id, const Status& s) {
  RpcReply r;
  r.request_id = request_id;
  r.ok = false;
  r.error = ErrorBody::FromStatus(s);
  return r;
}

JsonValue RpcReply::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("request_id", JsonValue::Int(request_id));
  v.Set("ok", JsonValue::Bool(ok));
  if (ok) {
    v.Set("payload", payload);
  } else {
    v.Set("error", error.ToJson());
  }
  return v;
}

Result<RpcReply> RpcReply::FromJson(const JsonValue& v) {
  RpcReply rep;
  ObjectReader r(v, "RpcReply");
  r.Int("request_id", &rep.request_id);
  r.Bool("ok", &rep.ok, /*required=*/true);
  const JsonValue* payload = r.Child("payload");
  const JsonValue* error = r.Child("error");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (rep.ok) {
    if (payload == nullptr || !payload->is_object()) {
      return Status::Invalid("ok RpcReply requires an object payload");
    }
    rep.payload = *payload;
  } else {
    if (error == nullptr) {
      return Status::Invalid("failed RpcReply requires an error body");
    }
    IFGEN_ASSIGN_OR_RETURN(rep.error, ErrorBody::FromJson(*error));
  }
  return rep;
}

JsonValue IdRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Str(id));
  v.Set("wait_ms", JsonValue::Int(wait_ms));
  return v;
}

Result<IdRequest> IdRequest::FromJson(const JsonValue& v) {
  IdRequest q;
  ObjectReader r(v, "IdRequest");
  r.String("id", &q.id, /*required=*/true);
  r.Int("wait_ms", &q.wait_ms, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return q;
}

JsonValue ProgressRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("last_seen_version", JsonValue::Int(last_seen_version));
  v.Set("wait_ms", JsonValue::Int(wait_ms));
  return v;
}

Result<ProgressRequest> ProgressRequest::FromJson(const JsonValue& v) {
  ProgressRequest q;
  ObjectReader r(v, "ProgressRequest");
  r.String("job_id", &q.job_id, /*required=*/true);
  r.Int("last_seen_version", &q.last_seen_version, /*required=*/false, 0);
  r.Int("wait_ms", &q.wait_ms, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return q;
}

JsonValue SessionEventRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("session_id", JsonValue::Str(session_id));
  v.Set("event", event.ToJson());
  return v;
}

Result<SessionEventRequest> SessionEventRequest::FromJson(const JsonValue& v) {
  SessionEventRequest q;
  ObjectReader r(v, "SessionEventRequest");
  r.String("session_id", &q.session_id, /*required=*/true);
  const JsonValue* event = r.Child("event", /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_ASSIGN_OR_RETURN(q.event, WidgetEventRequest::FromJson(*event));
  return q;
}

JsonValue WorkerPingResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("jobs_submitted", JsonValue::Int(jobs_submitted));
  v.Set("jobs_executed", JsonValue::Int(jobs_executed));
  v.Set("jobs_pending", JsonValue::Int(jobs_pending));
  v.Set("sessions_active", JsonValue::Int(sessions_active));
  v.Set("draining", JsonValue::Bool(draining));
  return v;
}

Result<WorkerPingResponse> WorkerPingResponse::FromJson(const JsonValue& v) {
  WorkerPingResponse p;
  ObjectReader r(v, "WorkerPingResponse");
  r.Int("jobs_submitted", &p.jobs_submitted);
  r.Int("jobs_executed", &p.jobs_executed);
  r.Int("jobs_pending", &p.jobs_pending);
  r.Int("sessions_active", &p.sessions_active);
  r.Bool("draining", &p.draining);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return p;
}

JsonValue TextReply::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("text", JsonValue::Str(text));
  return v;
}

Result<TextReply> TextReply::FromJson(const JsonValue& v) {
  TextReply t;
  ObjectReader r(v, "TextReply");
  r.String("text", &t.text);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return t;
}

}  // namespace api
}  // namespace ifgen
