#include "api/rpc.h"

namespace ifgen {
namespace api {

namespace {

/// Full-width uint64 <-> lowercase hex (no 0x prefix). The strict Int codec
/// is int64, and canonical hashes / store keys use all 64 bits.
std::string U64ToHex(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

Result<uint64_t> HexToU64(const std::string& s, const char* what) {
  if (s.empty() || s.size() > 16) {
    return Status::Invalid(std::string(what) + ": bad hex '" + s + "'");
  }
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return Status::Invalid(std::string(what) + ": bad hex '" + s + "'");
    }
    v = (v << 4) | digit;
  }
  return v;
}

}  // namespace

JsonValue RpcEnvelope::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("api_version", JsonValue::Str(api_version));
  v.Set("method", JsonValue::Str(method));
  v.Set("request_id", JsonValue::Int(request_id));
  v.Set("payload", payload);
  return v;
}

Result<RpcEnvelope> RpcEnvelope::FromJson(const JsonValue& v) {
  RpcEnvelope e;
  ObjectReader r(v, "RpcEnvelope");
  r.String("api_version", &e.api_version, /*required=*/true);
  r.String("method", &e.method, /*required=*/true);
  r.Int("request_id", &e.request_id);
  const JsonValue* payload = r.Child("payload");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (payload != nullptr) {
    if (!payload->is_object()) {
      return Status::Invalid("RpcEnvelope.payload must be an object");
    }
    e.payload = *payload;
  }
  return e;
}

RpcReply RpcReply::Success(int64_t request_id, JsonValue payload) {
  RpcReply r;
  r.request_id = request_id;
  r.ok = true;
  r.payload = std::move(payload);
  return r;
}

RpcReply RpcReply::Failure(int64_t request_id, const Status& s) {
  RpcReply r;
  r.request_id = request_id;
  r.ok = false;
  r.error = ErrorBody::FromStatus(s);
  return r;
}

JsonValue RpcReply::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("request_id", JsonValue::Int(request_id));
  v.Set("ok", JsonValue::Bool(ok));
  if (epoch != 0) v.Set("epoch", JsonValue::Int(epoch));
  if (ok) {
    v.Set("payload", payload);
  } else {
    v.Set("error", error.ToJson());
  }
  return v;
}

Result<RpcReply> RpcReply::FromJson(const JsonValue& v) {
  RpcReply rep;
  ObjectReader r(v, "RpcReply");
  r.Int("request_id", &rep.request_id);
  r.Bool("ok", &rep.ok, /*required=*/true);
  r.Int("epoch", &rep.epoch, /*required=*/false, 0);
  const JsonValue* payload = r.Child("payload");
  const JsonValue* error = r.Child("error");
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (rep.ok) {
    if (payload == nullptr || !payload->is_object()) {
      return Status::Invalid("ok RpcReply requires an object payload");
    }
    rep.payload = *payload;
  } else {
    if (error == nullptr) {
      return Status::Invalid("failed RpcReply requires an error body");
    }
    IFGEN_ASSIGN_OR_RETURN(rep.error, ErrorBody::FromJson(*error));
  }
  return rep;
}

JsonValue IdRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Str(id));
  v.Set("wait_ms", JsonValue::Int(wait_ms));
  return v;
}

Result<IdRequest> IdRequest::FromJson(const JsonValue& v) {
  IdRequest q;
  ObjectReader r(v, "IdRequest");
  r.String("id", &q.id, /*required=*/true);
  r.Int("wait_ms", &q.wait_ms, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return q;
}

JsonValue ProgressRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("job_id", JsonValue::Str(job_id));
  v.Set("last_seen_version", JsonValue::Int(last_seen_version));
  v.Set("wait_ms", JsonValue::Int(wait_ms));
  return v;
}

Result<ProgressRequest> ProgressRequest::FromJson(const JsonValue& v) {
  ProgressRequest q;
  ObjectReader r(v, "ProgressRequest");
  r.String("job_id", &q.job_id, /*required=*/true);
  r.Int("last_seen_version", &q.last_seen_version, /*required=*/false, 0);
  r.Int("wait_ms", &q.wait_ms, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return q;
}

JsonValue SessionEventRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("session_id", JsonValue::Str(session_id));
  v.Set("event", event.ToJson());
  return v;
}

Result<SessionEventRequest> SessionEventRequest::FromJson(const JsonValue& v) {
  SessionEventRequest q;
  ObjectReader r(v, "SessionEventRequest");
  r.String("session_id", &q.session_id, /*required=*/true);
  const JsonValue* event = r.Child("event", /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_ASSIGN_OR_RETURN(q.event, WidgetEventRequest::FromJson(*event));
  return q;
}

JsonValue WorkerPingResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("jobs_submitted", JsonValue::Int(jobs_submitted));
  v.Set("jobs_executed", JsonValue::Int(jobs_executed));
  v.Set("jobs_pending", JsonValue::Int(jobs_pending));
  v.Set("sessions_active", JsonValue::Int(sessions_active));
  v.Set("draining", JsonValue::Bool(draining));
  v.Set("cache_probes", JsonValue::Int(cache_probes));
  v.Set("cache_probe_hits", JsonValue::Int(cache_probe_hits));
  v.Set("tt_peer_ingested", JsonValue::Int(tt_peer_ingested));
  v.Set("tt_peer_hits", JsonValue::Int(tt_peer_hits));
  return v;
}

Result<WorkerPingResponse> WorkerPingResponse::FromJson(const JsonValue& v) {
  WorkerPingResponse p;
  ObjectReader r(v, "WorkerPingResponse");
  r.Int("jobs_submitted", &p.jobs_submitted);
  r.Int("jobs_executed", &p.jobs_executed);
  r.Int("jobs_pending", &p.jobs_pending);
  r.Int("sessions_active", &p.sessions_active);
  r.Bool("draining", &p.draining);
  r.Int("cache_probes", &p.cache_probes, /*required=*/false, 0);
  r.Int("cache_probe_hits", &p.cache_probe_hits, /*required=*/false, 0);
  r.Int("tt_peer_ingested", &p.tt_peer_ingested, /*required=*/false, 0);
  r.Int("tt_peer_hits", &p.tt_peer_hits, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return p;
}

JsonValue CacheProbeResponse::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("hit", JsonValue::Bool(hit));
  return v;
}

Result<CacheProbeResponse> CacheProbeResponse::FromJson(const JsonValue& v) {
  CacheProbeResponse p;
  ObjectReader r(v, "CacheProbeResponse");
  r.Bool("hit", &p.hit, /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return p;
}

JsonValue TtExportRequest::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("max_entries", JsonValue::Int(max_entries));
  return v;
}

Result<TtExportRequest> TtExportRequest::FromJson(const JsonValue& v) {
  TtExportRequest q;
  ObjectReader r(v, "TtExportRequest");
  r.Int("max_entries", &q.max_entries, /*required=*/false, 256);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return q;
}

bool TtBatchDto::operator==(const TtBatchDto& o) const {
  return store_key == o.store_key && entries == o.entries;
}

JsonValue TtBatchDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("store_key", JsonValue::Str(U64ToHex(store_key)));
  JsonValue arr = JsonValue::Array();
  for (const TtSeedEntry& e : entries) {
    JsonValue ev = JsonValue::Object();
    ev.Set("h", JsonValue::Str(U64ToHex(e.canonical)));
    ev.Set("c", JsonValue::Double(e.cost));
    ev.Set("v", JsonValue::Int(static_cast<int64_t>(e.visits)));
    arr.Append(std::move(ev));
  }
  v.Set("entries", std::move(arr));
  return v;
}

Result<TtBatchDto> TtBatchDto::FromJson(const JsonValue& v) {
  TtBatchDto b;
  std::string store_hex;
  ObjectReader r(v, "TtBatchDto");
  r.String("store_key", &store_hex, /*required=*/true);
  const JsonValue* entries = r.Child("entries", /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  IFGEN_ASSIGN_OR_RETURN(b.store_key, HexToU64(store_hex, "TtBatchDto.store_key"));
  if (!entries->is_array()) {
    return Status::Invalid("TtBatchDto.entries must be an array");
  }
  b.entries.reserve(entries->items().size());
  for (const JsonValue& ev : entries->items()) {
    TtSeedEntry e;
    std::string hex;
    int64_t visits = 0;
    ObjectReader er(ev, "TtBatchDto.entry");
    er.String("h", &hex, /*required=*/true);
    er.Double("c", &e.cost, /*required=*/true);
    er.Int("v", &visits, /*required=*/false, 0);
    IFGEN_RETURN_NOT_OK(er.Finish());
    IFGEN_ASSIGN_OR_RETURN(e.canonical, HexToU64(hex, "TtBatchDto.entry.h"));
    e.visits = visits < 0 ? 0 : static_cast<uint64_t>(visits);
    b.entries.push_back(e);
  }
  return b;
}

JsonValue TtSyncDto::ToJson() const {
  JsonValue v = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  for (const TtBatchDto& b : batches) arr.Append(b.ToJson());
  v.Set("batches", std::move(arr));
  return v;
}

Result<TtSyncDto> TtSyncDto::FromJson(const JsonValue& v) {
  TtSyncDto s;
  ObjectReader r(v, "TtSyncDto");
  const JsonValue* batches = r.Child("batches", /*required=*/true);
  IFGEN_RETURN_NOT_OK(r.Finish());
  if (!batches->is_array()) {
    return Status::Invalid("TtSyncDto.batches must be an array");
  }
  s.batches.reserve(batches->items().size());
  for (const JsonValue& bv : batches->items()) {
    IFGEN_ASSIGN_OR_RETURN(TtBatchDto b, TtBatchDto::FromJson(bv));
    s.batches.push_back(std::move(b));
  }
  return s;
}

JsonValue TtSyncAck::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("ingested", JsonValue::Int(ingested));
  return v;
}

Result<TtSyncAck> TtSyncAck::FromJson(const JsonValue& v) {
  TtSyncAck a;
  ObjectReader r(v, "TtSyncAck");
  r.Int("ingested", &a.ingested, /*required=*/false, 0);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return a;
}

JsonValue TextReply::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("text", JsonValue::Str(text));
  return v;
}

Result<TextReply> TextReply::FromJson(const JsonValue& v) {
  TextReply t;
  ObjectReader r(v, "TextReply");
  r.String("text", &t.text);
  IFGEN_RETURN_NOT_OK(r.Finish());
  return t;
}

}  // namespace api
}  // namespace ifgen
