#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/options.h"
#include "engine/table.h"
#include "runtime/interactive.h"
#include "search/search_common.h"
#include "util/json.h"
#include "util/status.h"

namespace ifgen {
namespace api {

/// \brief The versioned (v1) transport-agnostic API surface: typed DTOs
/// with an exact JSON codec.
///
/// Contract, enforced by tests/api_test.cc:
///  - `T::FromJson(x.ToJson()) == x` for every DTO `x` (numeric kinds
///    included — table cells survive a wire hop bit-identically).
///  - Decoding is strict: unknown fields, wrong-kind fields, and malformed
///    documents are structured errors (InvalidArgument / ParseError /
///    OutOfRange), never crashes — `ErrorBody` carries the stable
///    `StatusCodeName` string for every failure that crosses a transport.
///  - DTOs are flat and versioned as a set: breaking changes mean a /v2.
///
/// The HTTP front-end (src/http) is a thin adapter over these types; any
/// other transport (gRPC, a message queue, in-process embedding) reuses
/// them unchanged.

// ---------------------------------------------------------------------------
// Codec helper.

/// \brief Strict field-by-field reader over a JSON object: wrong-kind and
/// out-of-range fields accumulate a (first) error, and Finish() rejects any
/// field no Get consumed — the unknown-field guard that keeps v1 requests
/// forward-incompatible by design instead of silently ignored.
class ObjectReader {
 public:
  /// `what` names the DTO for error messages ("GenerateRequest").
  ObjectReader(const JsonValue& value, std::string what);

  void String(const char* key, std::string* out, bool required = false);
  /// kInt only (doubles do not silently truncate); `lo`/`hi` inclusive.
  void Int(const char* key, int64_t* out, bool required = false,
           int64_t lo = INT64_MIN, int64_t hi = INT64_MAX);
  void Double(const char* key, double* out, bool required = false);
  void Bool(const char* key, bool* out, bool required = false);
  void StringArray(const char* key, std::vector<std::string>* out,
                   bool required = false);
  /// Any-kind member access (nested DTOs); null when absent.
  const JsonValue* Child(const char* key, bool required = false);

  /// First accumulated error, or InvalidArgument naming every field that no
  /// accessor consumed.
  Status Finish();

 private:
  const JsonValue* Get(const char* key);
  void Fail(Status s);

  const JsonValue& value_;
  std::string what_;
  Status status_;
  std::vector<bool> consumed_;
};

/// Exact scalar mapping of an engine Value: null/int/double/string. Bool
/// and nested kinds are rejected (the engine has no such cell types).
JsonValue ValueToJson(const Value& v);
Result<Value> ValueFromJson(const JsonValue& j);

// ---------------------------------------------------------------------------
// Error model.

/// \brief The one wire shape every failed call returns, on every transport.
///
/// `retryable` is the client's backpressure signal: true exactly for
/// transient failures — ResourceExhausted (429, bounded admission) and
/// Unavailable (503, worker unreachable/draining) — where the same request
/// retried after a backoff is expected to succeed. All other codes are hard
/// failures; retrying without changing the request will fail again. The bit
/// is derived from `code` on both encode and decode, so it survives a wire
/// hop without becoming an independent source of truth.
struct ErrorBody {
  std::string code;  ///< stable StatusCodeName string ("InvalidArgument")
  std::string message;
  bool retryable = false;  ///< transient (429/503): retry after backoff

  static ErrorBody FromStatus(const Status& s);
  /// Inverse mapping; an unrecognized code becomes kInternal.
  Status ToStatus() const;
  /// The retry classification FromStatus applies.
  static bool RetryableCode(StatusCode code);

  JsonValue ToJson() const;
  static Result<ErrorBody> FromJson(const JsonValue& v);
  bool operator==(const ErrorBody& o) const {
    return code == o.code && message == o.message && retryable == o.retryable;
  }
};

// ---------------------------------------------------------------------------
// Generation.

/// \brief Flat, versioned generator configuration with defaults — the wire
/// face of GeneratorOptions (plus the paper-relevant search/parallel/
/// backend knobs), kept deliberately flat so clients never mirror internal
/// struct nesting.
struct ApiOptions {
  std::string algorithm = "mcts";
  std::string backend = "columnar";
  std::string parallel_mode = "root";
  int64_t time_budget_ms = 2000;
  int64_t max_iterations = 0;
  int64_t seed = 42;
  int64_t screen_width = 100;
  int64_t screen_height = 40;
  int64_t num_threads = 1;
  int64_t k_assignments = 8;
  bool use_priors = true;
  bool progressive_widening = true;
  bool delta_cost_eval = true;
  /// Cluster cache peering (GeneratorOptions::cache_peering): the job's
  /// transposition entries may warm-start from / export to sibling workers,
  /// and cost sampling becomes state-keyed so peering preserves
  /// bit-identity. Default off: a single-process request is unchanged.
  bool cache_peering = false;
  /// Persistent experience (GeneratorOptions::experience): the job may
  /// warm-start from the service's on-disk experience store and records its
  /// discoveries back (src/learn/). Switches cost sampling to the
  /// state-keyed mode exactly like `cache_peering`. Default off: a request
  /// without the flag is unchanged.
  bool experience = false;
  /// Anytime time control (search/timeman.h). deadline_ms: wall-clock
  /// deadline for the whole call, 0 = off; target_cost: stop once the best
  /// cost reaches it, 0 = off; plateau_fraction: stop when the best cost
  /// has not improved for this fraction of the elapsed time, 0 = off.
  int64_t deadline_ms = 0;
  double target_cost = 0.0;
  double plateau_fraction = 0.0;

  /// Validates names and ranges (unknown algorithm/backend/mode →
  /// InvalidArgument; non-positive screen, zero budget AND zero iterations,
  /// absurd thread counts → OutOfRange) and maps onto the internal options.
  Result<GeneratorOptions> ToGeneratorOptions() const;
  static ApiOptions FromGeneratorOptions(const GeneratorOptions& o);

  JsonValue ToJson() const;
  static Result<ApiOptions> FromJson(const JsonValue& v);
  bool operator==(const ApiOptions& o) const;
};

/// \brief POST /v1/generate: a query log (or a named workload whose log is
/// used when `sqls` is empty) plus options.
struct GenerateRequest {
  std::string workload;  ///< attaches sessions to this store; may be ""
  std::vector<std::string> sqls;
  ApiOptions options;

  JsonValue ToJson() const;
  static Result<GenerateRequest> FromJson(const JsonValue& v);
  bool operator==(const GenerateRequest& o) const {
    return workload == o.workload && sqls == o.sqls && options == o.options;
  }
};

/// \brief 202 body of POST /v1/generate: the async job handle.
struct GenerateAccepted {
  std::string job_id;
  std::string state;  ///< JobStateName at admission ("queued" or "done")

  JsonValue ToJson() const;
  static Result<GenerateAccepted> FromJson(const JsonValue& v);
  bool operator==(const GenerateAccepted& o) const {
    return job_id == o.job_id && state == o.state;
  }
};

/// \brief One (time, iteration, cost) sample of the best-so-far curve —
/// the anytime view of a finished search.
struct TracePoint {
  int64_t ms = 0;
  int64_t iteration = 0;
  double cost = 0.0;

  JsonValue ToJson() const;
  static Result<TracePoint> FromJson(const JsonValue& v);
  bool operator==(const TracePoint& o) const {
    return ms == o.ms && iteration == o.iteration && cost == o.cost;
  }
};

/// \brief Search instrumentation exposed per job.
struct SearchStatsDto {
  int64_t iterations = 0;
  int64_t states_expanded = 0;
  int64_t rollouts = 0;
  int64_t elapsed_ms = 0;
  int64_t trees = 1;
  std::string stop_reason = "none";  ///< StopReasonName of why the loop ended
  std::vector<TracePoint> trace;

  static SearchStatsDto FromStats(const SearchStats& s);
  JsonValue ToJson() const;
  static Result<SearchStatsDto> FromJson(const JsonValue& v);
  bool operator==(const SearchStatsDto& o) const;
};

/// \brief The finished-job payload: the interface spec (difftree + laid-out
/// widget tree as the core/json_export trees), its cost breakdown, and the
/// search stats.
struct GenerateResponse {
  std::string job_id;
  std::string workload;
  std::string algorithm;
  std::string backend;  ///< backend sessions over this job execute on
  double coverage = 0.0;
  JsonValue cost = JsonValue::Object();      ///< CostToJsonValue shape
  JsonValue difftree = JsonValue::Object();  ///< DiffTreeToJsonValue shape
  JsonValue widgets = JsonValue::Object();   ///< WidgetTreeToJsonValue shape
  SearchStatsDto stats;

  JsonValue ToJson() const;
  static Result<GenerateResponse> FromJson(const JsonValue& v);
  bool operator==(const GenerateResponse& o) const;
};

/// \brief The one terminal/partial payload structure shared by job status
/// and job progress responses: an optional GenerateResponse-shaped value
/// plus an optional ErrorBody.
///
/// Both halves are independent — a cancelled job carries the error AND the
/// best-so-far partial value when one was captured mid-run. The DTO has no
/// top-level wire object of its own: it appends to the enclosing response
/// under that response's legacy field names ("result"/"error" for
/// JobStatusResponse, "partial"/"error" for JobProgressResponse), which the
/// codec tests pin for back-compat.
struct JobResultDto {
  /// "done": the full result; "cancelled": best-so-far partial (absent on
  /// queued-phase cancels). On progress frames: the best-so-far snapshot.
  std::optional<GenerateResponse> value;
  std::optional<ErrorBody> error;  ///< state == "failed"/"cancelled"

  /// Appends `value` under `value_field` and `error` under "error" to an
  /// enclosing response object (absent halves are omitted, not null).
  void AppendToJson(JsonValue* obj, const char* value_field) const;
  /// Inverse of AppendToJson over the Child pointers an ObjectReader
  /// already consumed (null = absent).
  static Result<JobResultDto> FromFields(const JsonValue* value_json,
                                         const JsonValue* error_json);
  bool operator==(const JobResultDto& o) const {
    return value == o.value && error == o.error;
  }
};

/// \brief GET /v1/jobs/{id}: job state, phase timings, and (terminal only)
/// the result or error, serialized under "result"/"error".
struct JobStatusResponse {
  std::string job_id;
  std::string state;  ///< JobStateName
  bool cache_hit = false;
  int64_t queued_ms = 0;
  int64_t run_ms = 0;
  JobResultDto result;  ///< terminal payload; empty while queued/running

  JsonValue ToJson() const;
  static Result<JobStatusResponse> FromJson(const JsonValue& v);
  bool operator==(const JobStatusResponse& o) const;
};

/// \brief GET /v1/jobs/{id}/progress (long-poll) and each SSE frame of
/// GET /v1/jobs/{id}/stream: the versioned best-so-far snapshot of a job.
///
/// `version` counts published improvements (0 = none yet) and is strictly
/// increasing across frames of one job. `partial` is GenerateResponse-shaped:
/// mid-run frames carry the best difftree, its cost-so-far, and minimal
/// stats (widgets stay empty — they are materialized in the final phase);
/// the `final` frame embeds the job's full terminal result when one exists.
struct JobProgressResponse {
  std::string job_id;
  std::string state;  ///< JobStateName
  int64_t version = 0;
  bool final_frame = false;  ///< wire name "final": terminal, stream complete
  /// Best-so-far snapshot, serialized under "partial"/"error"; terminal
  /// failed/cancelled frames carry the job's error alongside any partial.
  JobResultDto result;

  JsonValue ToJson() const;
  static Result<JobProgressResponse> FromJson(const JsonValue& v);
  bool operator==(const JobProgressResponse& o) const;
};

// ---------------------------------------------------------------------------
// Sessions.

/// \brief POST /v1/sessions: opens an interactive runtime over a finished
/// job. `workload`/`backend` default to the job's own.
struct SessionOpenRequest {
  std::string job_id;
  std::string workload;  ///< override; "" = the job's workload
  std::string backend;   ///< override; "" = the job's backend

  JsonValue ToJson() const;
  static Result<SessionOpenRequest> FromJson(const JsonValue& v);
  bool operator==(const SessionOpenRequest& o) const {
    return job_id == o.job_id && workload == o.workload && backend == o.backend;
  }
};

/// \brief A result table on the wire: column names plus rows of exact
/// engine scalars.
struct TableDto {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  static TableDto FromTable(const Table& t);
  JsonValue ToJson() const;
  static Result<TableDto> FromJson(const JsonValue& v);
  bool operator==(const TableDto& o) const {
    return columns == o.columns && rows == o.rows;
  }
};

struct SessionOpenResponse {
  std::string session_id;
  std::string sql;      ///< current query of the fresh session
  int64_t version = 0;  ///< feed version the `table` snapshot corresponds to
  TableDto table;
  JsonValue widgets = JsonValue::Object();

  JsonValue ToJson() const;
  static Result<SessionOpenResponse> FromJson(const JsonValue& v);
  bool operator==(const SessionOpenResponse& o) const;
};

/// \brief POST /v1/sessions/{id}/events: one widget manipulation. `kind`
/// selects the fields that apply; fields outside the kind's set are
/// rejected (not ignored) so a malformed client fails loudly.
///
///   {"kind":"set_any","choice_id":3,"option_index":1}
///   {"kind":"set_opt","choice_id":4,"present":false}
///   {"kind":"set_multi","choice_id":2,"count":2}
///   {"kind":"load_query","sql":"SELECT ..."}
struct WidgetEventRequest {
  std::string kind;
  int64_t choice_id = -1;
  int64_t option_index = -1;
  /// Capped at InterfaceSession::kMaxMultiCount by ApplyEvent — it sizes
  /// the repeated-clause allocation, so it gets a domain bound, not just
  /// the int range the ids get.
  int64_t count = 0;
  bool present = false;
  std::string sql;

  JsonValue ToJson() const;
  static Result<WidgetEventRequest> FromJson(const JsonValue& v);
  bool operator==(const WidgetEventRequest& o) const;
};

/// \brief Wire form of InteractiveRuntime::StepReport.
struct StepReportDto {
  std::string transition;  ///< TransitionClassName
  bool incremental = false;
  bool from_cache = false;
  int64_t widgets_changed = 0;
  double interaction_cost = 0.0;
  double navigation_cost = 0.0;
  int64_t rows = 0;
  int64_t rows_added = 0;
  int64_t rows_removed = 0;
  int64_t rows_updated = 0;

  static StepReportDto FromReport(const InteractiveRuntime::StepReport& r);
  JsonValue ToJson() const;
  static Result<StepReportDto> FromJson(const JsonValue& v);
  bool operator==(const StepReportDto& o) const;
};

/// \brief Wire form of InteractiveRuntime::RowChange ("add"/"remove"/
/// "update"; `old_row` is present for updates only).
struct RowChangeDto {
  std::string kind;
  std::vector<Value> row;
  std::vector<Value> old_row;

  static RowChangeDto FromChange(const InteractiveRuntime::RowChange& c);
  JsonValue ToJson() const;
  static Result<RowChangeDto> FromJson(const JsonValue& v);
  bool operator==(const RowChangeDto& o) const {
    return kind == o.kind && row == o.row && old_row == o.old_row;
  }
};

/// \brief Wire form of InteractiveRuntime::ChangeBatch: the row diffs from
/// `from_version` to `to_version`. Applying them to the client's table at
/// `from_version` reproduces the result at `to_version` as a multiset —
/// the feed contract documented in docs/interactive.md.
struct ChangeBatchDto {
  int64_t from_version = 0;
  int64_t to_version = 0;
  StepReportDto last_step;
  std::vector<RowChangeDto> changes;

  static ChangeBatchDto FromBatch(const InteractiveRuntime::ChangeBatch& b);
  JsonValue ToJson() const;
  static Result<ChangeBatchDto> FromJson(const JsonValue& v);
  bool operator==(const ChangeBatchDto& o) const;
};

/// \brief Response to a widget event: the step's report plus this event
/// subscriber's diff batch since its previous event response.
struct StepResponse {
  std::string session_id;
  std::string sql;
  int64_t version = 0;
  StepReportDto report;
  ChangeBatchDto batch;

  JsonValue ToJson() const;
  static Result<StepResponse> FromJson(const JsonValue& v);
  bool operator==(const StepResponse& o) const;
};

// ---------------------------------------------------------------------------
// Introspection.

struct TableInfo {
  std::string name;
  int64_t rows = 0;
  int64_t columns = 0;

  JsonValue ToJson() const;
  static Result<TableInfo> FromJson(const JsonValue& v);
  bool operator==(const TableInfo& o) const {
    return name == o.name && rows == o.rows && columns == o.columns;
  }
};

struct WorkloadInfo {
  std::string name;
  int64_t queries = 0;  ///< size of the workload's example log
  std::vector<TableInfo> tables;

  JsonValue ToJson() const;
  static Result<WorkloadInfo> FromJson(const JsonValue& v);
  bool operator==(const WorkloadInfo& o) const;
};

/// \brief GET /v1/catalog: what this server can generate against.
struct CatalogResponse {
  std::vector<WorkloadInfo> workloads;
  std::vector<std::string> backends;  ///< compiled-in BackendKindNames

  JsonValue ToJson() const;
  static Result<CatalogResponse> FromJson(const JsonValue& v);
  bool operator==(const CatalogResponse& o) const {
    return workloads == o.workloads && backends == o.backends;
  }
};

struct BackendStatsDto {
  std::string workload;
  std::string backend;
  int64_t prepares = 0;
  int64_t plan_cache_hits = 0;
  int64_t executions = 0;

  JsonValue ToJson() const;
  static Result<BackendStatsDto> FromJson(const JsonValue& v);
  bool operator==(const BackendStatsDto& o) const;
};

/// \brief One worker's row in `/v1/cluster` and `stats.cluster.workers[]`:
/// identity, health, and job/RPC counters as last observed by the router.
struct WorkerStatsDto {
  int64_t worker = 0;   ///< index in the cluster ring
  std::string address;  ///< "host:port" of the worker's RPC listener
  bool healthy = true;
  bool draining = false;
  int64_t jobs_submitted = 0;
  int64_t jobs_executed = 0;
  int64_t jobs_pending = 0;
  int64_t sessions_active = 0;
  int64_t rpcs = 0;          ///< RPCs the router sent this worker
  int64_t rpc_failures = 0;  ///< transport-level failures (marks unhealthy)
  int64_t reconnects = 0;    ///< successful health-probe recoveries
  // Cache peering (docs/cluster.md). Worker-reported:
  int64_t cache_probes = 0;      ///< cache.probe lookups answered
  int64_t cache_probe_hits = 0;  ///< ...that found a completed identical job
  int64_t tt_peer_ingested = 0;  ///< gossiped TT entries merged (first write)
  int64_t tt_peer_hits = 0;      ///< searches' lookups served by peer entries
  // Router-observed:
  int64_t result_peer_hits = 0;  ///< submits routed here by a sibling probe hit
  int64_t tt_published = 0;      ///< TT entries the router pushed to this worker

  JsonValue ToJson() const;
  static Result<WorkerStatsDto> FromJson(const JsonValue& v);
  bool operator==(const WorkerStatsDto& o) const;
};

/// \brief GET /v1/cluster: serving topology. `mode` is "single" for an
/// in-process frontend (workers empty) and "cluster" for a router.
struct ClusterResponse {
  std::string mode = "single";
  std::vector<WorkerStatsDto> workers;

  JsonValue ToJson() const;
  static Result<ClusterResponse> FromJson(const JsonValue& v);
  bool operator==(const ClusterResponse& o) const {
    return mode == o.mode && workers == o.workers;
  }
};

/// \brief GET /v1/stats: nested per-component objects — `jobs`, `sessions`,
/// `runtime`, `backends[]`, and `cluster.workers[]` (empty in single-process
/// mode).
struct StatsResponse {
  int64_t jobs_submitted = 0;
  int64_t jobs_executed = 0;
  int64_t jobs_pending = 0;
  int64_t job_cache_hits = 0;
  int64_t sessions_opened = 0;
  int64_t sessions_active = 0;
  int64_t sessions_expired = 0;  ///< TTL/capacity evictions
  /// InteractiveRuntime counters summed over the currently open sessions.
  int64_t steps = 0;
  int64_t noops = 0;
  int64_t result_cache_hits = 0;
  int64_t delta_execs = 0;
  int64_t retruncates = 0;
  int64_t full_execs = 0;
  int64_t fallbacks = 0;
  std::vector<BackendStatsDto> backends;
  /// Experience-store telemetry (src/learn/); all zero when the service
  /// runs without a configured store.
  int64_t learn_store_entries = 0;
  int64_t learn_hits = 0;
  int64_t learn_misses = 0;
  int64_t learn_seeded = 0;
  int64_t learn_recorded = 0;
  int64_t learn_saves = 0;
  int64_t learn_loads = 0;
  /// Per-worker rows when served by a ClusterRouter; empty in-process.
  std::vector<WorkerStatsDto> cluster_workers;

  JsonValue ToJson() const;
  static Result<StatsResponse> FromJson(const JsonValue& v);
  bool operator==(const StatsResponse& o) const;
};

}  // namespace api
}  // namespace ifgen
