#pragma once

#include <string>

#include "api/dto.h"
#include "util/status.h"

namespace ifgen {
namespace api {

/// \brief The abstract v1 service surface transports bind to: every
/// operation takes and returns v1 DTOs (api/dto.h) and reports failures as
/// Status, so an HTTP adapter (src/http), an RPC worker (src/cluster), or a
/// test harness is a thin translator over whichever implementation it holds.
///
/// Two interchangeable implementations exist, pinned bit-identical by the
/// multi-process differential test (tests/cluster_test.cc):
///  - ApiService (api/api_service.h): the in-process frontend — jobs and
///    sessions run inside the calling process;
///  - ClusterRouter (cluster/cluster_router.h): fans the same calls out to
///    worker processes over the v1 RPC envelope (api/rpc.h).
///
/// Contract notes shared by all implementations:
///  - job ids look like "j-<n>" and session ids like "s-<n>"; callers treat
///    them as opaque strings (the cluster router keeps its own id space and
///    rewrites worker-local ids before they escape).
///  - transient failures (admission bounds, unreachable workers) come back
///    as ResourceExhausted/Unavailable — exactly the codes
///    ErrorBody::RetryableCode marks retryable on the wire.
class ServiceFrontend {
 public:
  virtual ~ServiceFrontend() = default;

  // ---- jobs -------------------------------------------------------------
  virtual Result<GenerateAccepted> SubmitGenerate(const GenerateRequest& req) = 0;
  /// `wait_ms` > 0 blocks until the job is terminal or the deadline.
  virtual Result<JobStatusResponse> GetJob(const std::string& job_id,
                                           int64_t wait_ms = 0) = 0;
  virtual Result<JobStatusResponse> CancelJob(const std::string& job_id) = 0;
  /// Versioned best-so-far snapshot; `wait_ms` > 0 long-polls until the
  /// version exceeds `last_seen_version`, the job turns terminal, or the
  /// deadline.
  virtual Result<JobProgressResponse> GetJobProgress(const std::string& job_id,
                                                     int64_t last_seen_version,
                                                     int64_t wait_ms = 0) = 0;
  /// The job's captured span trace as Chrome trace-event JSON.
  virtual Result<std::string> JobTrace(const std::string& job_id) = 0;

  // ---- sessions ---------------------------------------------------------
  virtual Result<SessionOpenResponse> OpenSession(const SessionOpenRequest& req) = 0;
  virtual Result<StepResponse> ApplyEvent(const std::string& session_id,
                                          const WidgetEventRequest& event) = 0;
  /// Drains the session's feed. `wait_ms` > 0 blocks (condvar, no busy
  /// polling) until the session's result version advances past the drained
  /// position or the deadline — an empty batch after a full wait is the
  /// long-poll timeout answer, not an error.
  virtual Result<ChangeBatchDto> PollSession(const std::string& session_id,
                                             int64_t wait_ms = 0) = 0;
  virtual Status CloseSession(const std::string& session_id) = 0;
  /// Current result snapshot (the feed consumer's resync path).
  virtual Result<TableDto> SessionTable(const std::string& session_id) = 0;

  // ---- introspection ----------------------------------------------------
  virtual Result<CatalogResponse> Catalog() = 0;
  virtual Result<StatsResponse> Stats() = 0;
  /// Serving topology: mode "single" (no workers) or "cluster" with one
  /// WorkerStatsDto row per worker.
  virtual Result<ClusterResponse> Cluster() = 0;
};

}  // namespace api
}  // namespace ifgen
