#pragma once

#include <string>
#include <vector>

#include "difftree/difftree.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief The value domain a choice node offers to its widget.
///
/// For an ANY node the domain is its alternatives; for OPT it is binary; for
/// MULTI it is the repetition template. Widget validity (can a slider
/// express this?) and appropriateness M(.) are both functions of the domain.
struct WidgetDomain {
  DKind node_kind = DKind::kAny;
  /// One label per alternative (ANY), or a single descriptive label.
  std::vector<std::string> labels;
  size_t cardinality = 0;
  /// Every alternative is a single literal leaf (Num/Str/Col/Table).
  bool all_leaf_literals = false;
  /// Every alternative is a numeric literal (enables sliders).
  bool all_numeric = false;
  /// Some alternative contains nested choice nodes (forces tabs).
  bool has_nested_choices = false;
  /// Numeric extent when all_numeric.
  double num_lo = 0.0;
  double num_hi = 0.0;
  size_t max_label_len = 0;
  /// Mean AST-node count of the alternatives (1.0 for leaf-value domains).
  /// Widgets mapping complex subtrees to options are penalized by M(.) —
  /// an option labeled "q7" that swaps a whole query is far less
  /// appropriate than one that swaps a literal (Zhang et al. 2017).
  double avg_subtree_nodes = 1.0;
};

/// Extracts the widget domain of a choice node.
WidgetDomain ExtractDomain(const DiffTree& choice_node);

/// Valid interaction-widget kinds for a choice node, in canonical order.
/// (MULTI -> {Adder}; OPT -> {Toggle, Checkbox}; ANY -> depends on domain.)
std::vector<WidgetKind> ValidWidgetKinds(const WidgetDomain& domain);

/// \brief The BETWEEN composite pattern: an ALL(Between) whose lo/hi
/// children are numeric choice domains can be covered by one range slider.
struct BetweenPattern {
  const DiffTree* between = nullptr;  ///< the ALL(kBetween) node
  const DiffTree* lo_any = nullptr;   ///< numeric ANY at child 1
  const DiffTree* hi_any = nullptr;   ///< numeric ANY at child 2
  std::string label;                  ///< rendered lhs expression
};

/// Detects the pattern; returns false if `node` does not qualify.
bool MatchBetweenPattern(const DiffTree& node, BetweenPattern* out);

}  // namespace ifgen
