#include "widgets/widget.h"

namespace ifgen {

std::string_view WidgetKindName(WidgetKind k) {
  switch (k) {
    case WidgetKind::kLabel:
      return "Label";
    case WidgetKind::kTextbox:
      return "Textbox";
    case WidgetKind::kDropdown:
      return "Dropdown";
    case WidgetKind::kSlider:
      return "Slider";
    case WidgetKind::kRangeSlider:
      return "RangeSlider";
    case WidgetKind::kCheckbox:
      return "Checkbox";
    case WidgetKind::kToggle:
      return "Toggle";
    case WidgetKind::kRadio:
      return "Radio";
    case WidgetKind::kButtons:
      return "Buttons";
    case WidgetKind::kTabs:
      return "Tabs";
    case WidgetKind::kVertical:
      return "Vertical";
    case WidgetKind::kHorizontal:
      return "Horizontal";
    case WidgetKind::kTabLayout:
      return "TabLayout";
    case WidgetKind::kAdder:
      return "Adder";
  }
  return "?";
}

bool IsLayoutWidget(WidgetKind k) {
  switch (k) {
    case WidgetKind::kVertical:
    case WidgetKind::kHorizontal:
    case WidgetKind::kTabLayout:
    case WidgetKind::kAdder:
      return true;
    default:
      return false;
  }
}

bool ShowsAllOptions(WidgetKind k) {
  return k == WidgetKind::kRadio || k == WidgetKind::kButtons || k == WidgetKind::kTabs;
}

std::string_view SizeClassName(SizeClass s) {
  switch (s) {
    case SizeClass::kSmall:
      return "small";
    case SizeClass::kMedium:
      return "medium";
    case SizeClass::kLarge:
      return "large";
  }
  return "?";
}

}  // namespace ifgen
