#include "widgets/domain.h"

#include <algorithm>

#include "util/string_util.h"

namespace ifgen {

namespace {

bool IsNumericLeaf(const DiffTree& n) {
  return n.kind == DKind::kAll && n.sym == Symbol::kNumExpr;
}

bool IsLiteralLeaf(const DiffTree& n) {
  return n.kind == DKind::kAll && IsLiteralSymbol(n.sym) && n.children.empty();
}

}  // namespace

WidgetDomain ExtractDomain(const DiffTree& choice_node) {
  WidgetDomain d;
  d.node_kind = choice_node.kind;
  switch (choice_node.kind) {
    case DKind::kAny: {
      d.cardinality = choice_node.children.size();
      d.all_leaf_literals = true;
      d.all_numeric = true;
      d.num_lo = 0.0;
      d.num_hi = 0.0;
      bool first_num = true;
      size_t total_nodes = 0;
      for (size_t i = 0; i < choice_node.children.size(); ++i) {
        const DiffTree& alt = choice_node.children[i];
        size_t nodes = alt.NodeCount();
        total_nodes += nodes;
        // Complex alternatives get synthesized short labels ("q3"), exactly
        // like the paper's Figure 2(a) buttons.
        d.labels.push_back(nodes > 8 ? "q" + std::to_string(i + 1)
                                     : DiffTreeLabel(alt));
        d.all_leaf_literals &= IsLiteralLeaf(alt) || alt.IsEmptyLeaf();
        if (IsNumericLeaf(alt)) {
          double v = std::atof(alt.value.c_str());
          if (first_num) {
            d.num_lo = d.num_hi = v;
            first_num = false;
          } else {
            d.num_lo = std::min(d.num_lo, v);
            d.num_hi = std::max(d.num_hi, v);
          }
        } else {
          d.all_numeric = false;
        }
        d.has_nested_choices |= alt.ChoiceCount() > 0;
      }
      if (!choice_node.children.empty()) {
        d.avg_subtree_nodes = static_cast<double>(total_nodes) /
                              static_cast<double>(choice_node.children.size());
      }
      break;
    }
    case DKind::kOpt: {
      d.cardinality = 2;
      d.labels.push_back(DiffTreeLabel(choice_node.children[0]));
      d.has_nested_choices = choice_node.children[0].ChoiceCount() > 0;
      // The toggle itself only flips presence; the child's complexity is
      // carried by the child's own widgets.
      d.avg_subtree_nodes = 1.0;
      break;
    }
    case DKind::kMulti: {
      d.cardinality = 1;
      d.labels.push_back(DiffTreeLabel(choice_node.children[0]));
      d.has_nested_choices = choice_node.children[0].ChoiceCount() > 0;
      d.avg_subtree_nodes = 1.0;
      break;
    }
    case DKind::kAll:
      break;
  }
  for (const std::string& l : d.labels) {
    d.max_label_len = std::max(d.max_label_len, l.size());
  }
  return d;
}

std::vector<WidgetKind> ValidWidgetKinds(const WidgetDomain& d) {
  std::vector<WidgetKind> kinds;
  switch (d.node_kind) {
    case DKind::kMulti:
      kinds.push_back(WidgetKind::kAdder);
      break;
    case DKind::kOpt:
      kinds.push_back(WidgetKind::kToggle);
      kinds.push_back(WidgetKind::kCheckbox);
      break;
    case DKind::kAny: {
      if (d.cardinality == 1) {
        kinds.push_back(d.has_nested_choices ? WidgetKind::kTabs : WidgetKind::kLabel);
        break;
      }
      if (d.has_nested_choices) {
        // Only tabs can host per-alternative nested widgets.
        kinds.push_back(WidgetKind::kTabs);
        break;
      }
      kinds.push_back(WidgetKind::kDropdown);
      kinds.push_back(WidgetKind::kRadio);
      kinds.push_back(WidgetKind::kButtons);
      if (d.all_numeric && d.cardinality >= 2) {
        kinds.push_back(WidgetKind::kSlider);
      }
      if (d.all_leaf_literals) {
        kinds.push_back(WidgetKind::kTextbox);
      }
      kinds.push_back(WidgetKind::kTabs);
      break;
    }
    case DKind::kAll:
      break;
  }
  return kinds;
}

bool MatchBetweenPattern(const DiffTree& node, BetweenPattern* out) {
  if (node.kind != DKind::kAll || node.sym != Symbol::kBetween ||
      node.children.size() != 3) {
    return false;
  }
  const DiffTree& lhs = node.children[0];
  const DiffTree& lo = node.children[1];
  const DiffTree& hi = node.children[2];
  if (lhs.ChoiceCount() != 0) return false;
  auto numeric_any = [](const DiffTree& n) {
    if (n.kind != DKind::kAny) return false;
    WidgetDomain d = ExtractDomain(n);
    return d.all_numeric && !d.has_nested_choices;
  };
  // Both endpoints must be choice nodes for a range slider to earn its keep;
  // a fixed endpoint leaves a plain slider for the other end.
  if (!numeric_any(lo) || !numeric_any(hi)) return false;
  if (out != nullptr) {
    out->between = &node;
    out->lo_any = &lo;
    out->hi_any = &hi;
    out->label = DiffTreeLabel(lhs, 16);
  }
  return true;
}

}  // namespace ifgen
