#pragma once

#include <cstdint>
#include <string_view>

namespace ifgen {

/// \brief Widget vocabulary (paper footnotes 1-2).
///
/// Layout widgets organize their children: horizontal, vertical, tabs, and
/// an adder that instantiates copies of its child group (for MULTI nodes).
/// Interaction widgets map a user action to a choice-node selection.
enum class WidgetKind : uint8_t {
  // Interaction widgets.
  kLabel = 0,    ///< fixed text; the widget for a singleton ANY
  kTextbox,      ///< free-text entry; fallback for leaf-literal domains
  kDropdown,     ///< select one of n options, collapsed presentation
  kSlider,       ///< numeric single-value selector
  kRangeSlider,  ///< numeric (lo, hi) selector; covers a BETWEEN's 2 choices
  kCheckbox,     ///< binary presence widget for OPT
  kToggle,       ///< binary presence widget for OPT (switch styling)
  kRadio,        ///< select one of n options, all visible, vertical
  kButtons,      ///< select one of n options, all visible, horizontal
  kTabs,         ///< select one of n alternatives, each with nested widgets

  // Layout widgets.
  kVertical,    ///< stack children top-to-bottom
  kHorizontal,  ///< place children left-to-right
  kTabLayout,   ///< children behind tabs (trades size for navigation cost)
  kAdder,       ///< MULTI: "+" instantiates copies of the child group
};

std::string_view WidgetKindName(WidgetKind k);

/// True for the layout kinds (kVertical, kHorizontal, kTabLayout, kAdder).
bool IsLayoutWidget(WidgetKind k);

/// True for widgets that render every option (radio/buttons/tabs), whose
/// size therefore grows with the domain cardinality.
bool ShowsAllOptions(WidgetKind k);

/// \brief Discretized widget sizes (paper: "we predefine small, medium and
/// large button templates separately").
enum class SizeClass : uint8_t { kSmall = 0, kMedium, kLarge };

std::string_view SizeClassName(SizeClass s);

/// \brief Width x height in character-grid units.
struct WidgetSize {
  int width = 0;
  int height = 0;
};

/// \brief Output screen constraint; a widget tree whose rendered bounding
/// box exceeds the screen is invalid (infinite cost).
struct Screen {
  int width = 100;
  int height = 40;
};

}  // namespace ifgen
