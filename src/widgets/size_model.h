#pragma once

#include "util/status.h"
#include "widgets/constants.h"
#include "widgets/domain.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief Discretized size model for leaf (interaction) widgets.
///
/// Widgets come in small/medium/large templates (paper, "Widgets"); the
/// model picks the smallest template whose capacity fits the domain, and
/// reports the widget as invalid when even the large template cannot hold
/// it (e.g. radio buttons over 30 options). Container sizes (layouts, tabs,
/// adder) are composed bottom-up by the layout solver, not here.
class SizeModel {
 public:
  explicit SizeModel(const CostConstants& constants) : c_(constants) {}

  /// Smallest fitting template, or InvalidArgument when none fits.
  Result<SizeClass> PickTemplate(WidgetKind kind, const WidgetDomain& domain) const;

  /// Concrete grid size of `kind` at `size_class` for `domain`.
  WidgetSize SizeOf(WidgetKind kind, SizeClass size_class,
                    const WidgetDomain& domain) const;

  /// Convenience: size of the smallest fitting template.
  Result<WidgetSize> FittedSize(WidgetKind kind, const WidgetDomain& domain) const;

 private:
  const CostConstants& c_;
};

}  // namespace ifgen
