#pragma once

#include <cstddef>

namespace ifgen {

/// \brief All tunable constants of the cost model, in one place.
///
/// The paper specifies the *form* of the cost function — appropriateness
/// M(.) per widget (borrowed from Zhang et al. 2017) plus transition effort
/// U(.) as a minimum spanning subtree over the widgets that change, with
/// per-widget interaction costs — but not numeric constants. These defaults
/// encode the standard HCI orderings (toggles cheap, typing expensive,
/// radios great small / terrible large, dropdowns scale, sliders for
/// numeric ranges) and are overridable everywhere for sensitivity studies.
struct CostConstants {
  // --- M(.): appropriateness by widget kind -------------------------------
  double m_label = 0.2;
  double m_toggle = 0.8;
  double m_checkbox = 1.0;
  double m_radio_base = 1.0;
  double m_radio_per_extra = 0.30;   ///< per option beyond radio_sweet_spot
  size_t radio_sweet_spot = 4;
  double m_buttons_base = 1.0;
  double m_buttons_per_extra = 0.45;  ///< per option beyond buttons_sweet_spot
  size_t buttons_sweet_spot = 3;
  double m_dropdown_base = 2.2;
  double m_dropdown_per_option = 0.03;
  double m_slider = 1.2;
  double m_slider_small_domain_penalty = 0.6;  ///< sliders for <= 3 values
  double m_range_slider = 1.2;  ///< one widget covering two numeric choices
  double m_textbox = 5.0;  ///< typing burden + error-proneness
  double m_tabs_base = 2.5;
  double m_tabs_per_option = 0.30;
  double m_vertical = 0.20;
  double m_horizontal = 0.25;
  double m_tab_layout_base = 2.0;
  double m_tab_layout_per_child = 0.30;
  double m_adder = 1.5;
  /// Penalty per mean AST node (beyond a leaf) in an enumerated widget's
  /// alternatives: mapping whole query subtrees to opaque options ("q7") is
  /// far less appropriate than mapping leaf values. This is the pressure
  /// that makes the search factor difftrees instead of stopping at the
  /// initial one-button-per-query interface.
  double m_complexity_per_node = 1.0;
  /// Tabs' alternative labels are exactly as opaque as radio labels over
  /// the same subtrees, so they carry the same penalty by default (kept
  /// separate for the ablation bench).
  double m_tabs_complexity_per_node = 1.0;

  // --- U(.): per-widget interaction costs ---------------------------------
  // Scaled so that the U sum over a ~10-query log stays comparable to a few
  // widgets' M — C(W,Q) sums U over |Q|-1 transitions, and logs whose
  // consecutive queries differ in many values would otherwise drown M.
  double i_toggle = 0.10;
  double i_checkbox = 0.10;
  double i_radio = 0.12;
  double i_buttons = 0.12;
  double i_dropdown_base = 0.15;
  double i_dropdown_log_factor = 0.03;  ///< * log2(options)
  double i_slider = 0.15;
  double i_range_slider = 0.20;
  double i_textbox_base = 0.20;
  double i_textbox_per_char = 0.04;
  double i_tabs = 0.20;
  /// An adder interaction re-instantiates its whole template (roughly a few
  /// nested tweaks), priced flat.
  double i_adder = 1.20;
  double i_label = 0.0;  ///< labels are not interactive

  // --- U(.): navigation over the widget tree ------------------------------
  double nav_edge = 0.02;       ///< crossing a layout edge while scanning
  double nav_tab_switch = 0.2;  ///< entering a non-active tab panel

  // --- Widget/template capacity limits -------------------------------------
  size_t radio_max_options = 10;
  size_t buttons_max_options = 8;
  size_t dropdown_max_options = 200;
  size_t tabs_max_options = 12;
};

}  // namespace ifgen
