#include "widgets/appropriateness.h"

#include <algorithm>
#include <cmath>

namespace ifgen {

double AppropriatenessCost(const CostConstants& c, WidgetKind kind,
                           const WidgetDomain& d) {
  const double n = static_cast<double>(d.cardinality);
  // Domain-complexity pressure: enumerated widgets over rich subtrees are
  // poor mappings (see CostConstants::m_complexity_per_node).
  const double complexity = std::max(0.0, d.avg_subtree_nodes - 1.0);
  switch (kind) {
    case WidgetKind::kLabel:
      return c.m_label;
    case WidgetKind::kToggle:
      return c.m_toggle;
    case WidgetKind::kCheckbox:
      return c.m_checkbox;
    case WidgetKind::kRadio:
      return c.m_radio_base +
             c.m_radio_per_extra *
                 std::max(0.0, n - static_cast<double>(c.radio_sweet_spot)) +
             c.m_complexity_per_node * complexity;
    case WidgetKind::kButtons:
      return c.m_buttons_base +
             c.m_buttons_per_extra *
                 std::max(0.0, n - static_cast<double>(c.buttons_sweet_spot)) +
             c.m_complexity_per_node * complexity;
    case WidgetKind::kDropdown:
      return c.m_dropdown_base + c.m_dropdown_per_option * n +
             c.m_complexity_per_node * complexity;
    case WidgetKind::kSlider:
      return c.m_slider + (d.cardinality <= 3 ? c.m_slider_small_domain_penalty : 0.0);
    case WidgetKind::kRangeSlider:
      return c.m_range_slider;
    case WidgetKind::kTextbox:
      return c.m_textbox + c.m_complexity_per_node * complexity;
    case WidgetKind::kTabs:
      return c.m_tabs_base + c.m_tabs_per_option * n +
             c.m_tabs_complexity_per_node * complexity;
    case WidgetKind::kVertical:
      return c.m_vertical;
    case WidgetKind::kHorizontal:
      return c.m_horizontal;
    case WidgetKind::kTabLayout:
      return c.m_tab_layout_base + c.m_tab_layout_per_child * n;
    case WidgetKind::kAdder:
      return c.m_adder;
  }
  return 0.0;
}

double InteractionCost(const CostConstants& c, WidgetKind kind,
                       const WidgetDomain& d) {
  const double n = std::max<double>(1.0, static_cast<double>(d.cardinality));
  switch (kind) {
    case WidgetKind::kLabel:
      return c.i_label;
    case WidgetKind::kToggle:
      return c.i_toggle;
    case WidgetKind::kCheckbox:
      return c.i_checkbox;
    case WidgetKind::kRadio:
      return c.i_radio;
    case WidgetKind::kButtons:
      return c.i_buttons;
    case WidgetKind::kDropdown:
      return c.i_dropdown_base + c.i_dropdown_log_factor * std::log2(n);
    case WidgetKind::kSlider:
      return c.i_slider;
    case WidgetKind::kRangeSlider:
      return c.i_range_slider;
    case WidgetKind::kTextbox:
      return c.i_textbox_base +
             c.i_textbox_per_char * static_cast<double>(d.max_label_len);
    case WidgetKind::kTabs:
      return c.i_tabs;
    case WidgetKind::kAdder:
      return c.i_adder;
    default:
      return 0.0;  // layout widgets are not interacted with directly
  }
}

}  // namespace ifgen
