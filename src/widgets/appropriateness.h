#pragma once

#include "widgets/constants.h"
#include "widgets/domain.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief M(.): how well-suited a widget kind is for the domain it must
/// express (paper, "Cost Function"; functional form follows Zhang et al.
/// 2017). Lower is better. Assumes the (kind, domain) pair already passed
/// ValidWidgetKinds / SizeModel validity.
double AppropriatenessCost(const CostConstants& c, WidgetKind kind,
                           const WidgetDomain& domain);

/// \brief Per-interaction effort of operating the widget once (the
/// interaction component of U(.)).
double InteractionCost(const CostConstants& c, WidgetKind kind,
                       const WidgetDomain& domain);

}  // namespace ifgen
