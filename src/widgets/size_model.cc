#include "widgets/size_model.h"

#include <algorithm>

#include "util/string_util.h"

namespace ifgen {

namespace {

/// Template widths per size class for width-bounded widgets.
constexpr int kTextWidths[3] = {12, 20, 32};
constexpr int kSliderWidths[3] = {12, 18, 26};
constexpr int kRangeWidths[3] = {14, 20, 28};
/// Option-count capacity per size class for option-showing widgets.
constexpr size_t kRadioCaps[3] = {3, 6, 10};
constexpr size_t kButtonsCaps[3] = {3, 5, 8};

int ClampWidth(size_t needed, int lo, int hi) {
  return std::clamp(static_cast<int>(needed), lo, hi);
}

}  // namespace

Result<SizeClass> SizeModel::PickTemplate(WidgetKind kind,
                                          const WidgetDomain& d) const {
  auto by_width = [&](const int widths[3], size_t needed) -> Result<SizeClass> {
    for (int s = 0; s < 3; ++s) {
      if (static_cast<size_t>(widths[s]) >= needed) return static_cast<SizeClass>(s);
    }
    // Wider labels are truncated by the renderer rather than invalidating
    // the widget; the large template is the cap.
    return SizeClass::kLarge;
  };
  switch (kind) {
    case WidgetKind::kLabel:
    case WidgetKind::kTextbox:
    case WidgetKind::kDropdown: {
      if (kind == WidgetKind::kDropdown && d.cardinality > c_.dropdown_max_options) {
        return Status::Invalid("dropdown over capacity");
      }
      return by_width(kTextWidths, d.max_label_len + 4);
    }
    case WidgetKind::kSlider:
      return by_width(kSliderWidths, 10 + d.max_label_len);
    case WidgetKind::kRangeSlider:
      return by_width(kRangeWidths, 12);
    case WidgetKind::kCheckbox:
    case WidgetKind::kToggle:
      return SizeClass::kSmall;
    case WidgetKind::kRadio: {
      for (int s = 0; s < 3; ++s) {
        if (d.cardinality <= kRadioCaps[s]) return static_cast<SizeClass>(s);
      }
      if (d.cardinality <= c_.radio_max_options) return SizeClass::kLarge;
      return Status::Invalid(StrFormat("radio cannot hold %zu options",
                                       d.cardinality));
    }
    case WidgetKind::kButtons: {
      for (int s = 0; s < 3; ++s) {
        if (d.cardinality <= kButtonsCaps[s]) return static_cast<SizeClass>(s);
      }
      return Status::Invalid(StrFormat("buttons cannot hold %zu options",
                                       d.cardinality));
    }
    case WidgetKind::kTabs: {
      if (d.cardinality > c_.tabs_max_options) {
        return Status::Invalid("tabs over capacity");
      }
      return SizeClass::kMedium;
    }
    default:
      return Status::Invalid("size template requested for layout widget");
  }
}

WidgetSize SizeModel::SizeOf(WidgetKind kind, SizeClass size_class,
                             const WidgetDomain& d) const {
  const int s = static_cast<int>(size_class);
  switch (kind) {
    case WidgetKind::kLabel:
      return {ClampWidth(d.max_label_len, 4, kTextWidths[s]), 1};
    case WidgetKind::kTextbox:
    case WidgetKind::kDropdown:
      return {kTextWidths[s], 1};
    case WidgetKind::kSlider:
      return {kSliderWidths[s], 1};
    case WidgetKind::kRangeSlider:
      return {kRangeWidths[s], 1};
    case WidgetKind::kCheckbox:
    case WidgetKind::kToggle:
      return {ClampWidth(d.max_label_len + 4, 8, 24), 1};
    case WidgetKind::kRadio: {
      int w = ClampWidth(d.max_label_len + 4, 8, 28);
      return {w, static_cast<int>(d.cardinality)};
    }
    case WidgetKind::kButtons: {
      size_t total = 0;
      for (const std::string& l : d.labels) total += std::min<size_t>(l.size(), 12) + 3;
      return {ClampWidth(total, 8, 72), 1};
    }
    case WidgetKind::kTabs: {
      // The tab bar only; panel size is composed by the layout solver.
      size_t bar = 0;
      for (const std::string& l : d.labels) bar += std::min<size_t>(l.size(), 10) + 3;
      return {ClampWidth(bar, 10, 72), 1};
    }
    default:
      return {0, 0};
  }
}

Result<WidgetSize> SizeModel::FittedSize(WidgetKind kind,
                                         const WidgetDomain& d) const {
  IFGEN_ASSIGN_OR_RETURN(SizeClass sc, PickTemplate(kind, d));
  return SizeOf(kind, sc, d);
}

}  // namespace ifgen
