// End-to-end interface-interaction latency per execution backend:
//   generate (once per workload) -> bind widget state (LoadQuery) ->
//   execute the bound query against the backend.
// One interaction = one widget-driven query transition. Re-executions of
// one interface reuse compiled plans (the per-backend plan cache keyed by
// the parameterized query shape), so the steady-state numbers isolate
// execution speed: the vectorized columnar backend should beat the
// row-at-a-time reference executor.
//
// JSON rows (one line each, `"bench":"backend"`) are documented in
// bench/README.md. IFGEN_BENCH_SMOKE=1 shrinks everything for CI.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "core/session.h"
#include "engine/backend.h"
#include "sql/parser.h"
#include "util/timer.h"
#include "workload/loader.h"

using namespace ifgen;  // NOLINT

namespace {

struct BackendRun {
  std::string backend;
  int64_t setup_us = 0;
  int64_t bind_us = 0;
  int64_t exec_us = 0;
  size_t interactions = 0;
  size_t skipped = 0;
  size_t rows_out = 0;
  BackendStats stats;
};

/// Replays the whole log `rounds` times through a fresh session, executing
/// every bound query on `backend`.
Result<BackendRun> RunBackend(const WorkloadBundle& w, const GeneratedInterface& iface,
                              const std::vector<Ast>& queries,
                              const CostConstants& constants, BackendKind kind,
                              size_t rounds) {
  BackendRun run;
  run.backend = std::string(BackendKindName(kind));
  Stopwatch setup;
  IFGEN_ASSIGN_OR_RETURN(std::unique_ptr<ExecutionBackend> backend,
                         MakeBackendFor(w, kind));
  run.setup_us = setup.ElapsedMicros();
  for (size_t round = 0; round < rounds; ++round) {
    IFGEN_ASSIGN_OR_RETURN(InterfaceSession session,
                           InterfaceSession::Create(iface, constants));
    for (const Ast& q : queries) {
      Stopwatch bind;
      if (!session.LoadQuery(q).ok()) {
        ++run.skipped;  // inexpressible under this interface
        continue;
      }
      run.bind_us += bind.ElapsedMicros();
      Stopwatch exec;
      IFGEN_ASSIGN_OR_RETURN(Table result, session.ExecuteCurrent(backend.get()));
      run.exec_us += exec.ElapsedMicros();
      run.rows_out += result.num_rows();
      ++run.interactions;
    }
  }
  run.stats = backend->stats();
  return run;
}

void PrintRow(const char* workload, size_t rows_db, size_t rounds,
              int64_t generate_ms, const BackendRun& r) {
  double per_exec_us =
      r.interactions == 0 ? 0.0
                          : static_cast<double>(r.exec_us) /
                                static_cast<double>(r.interactions);
  double end_to_end_us =
      r.interactions == 0 ? 0.0
                          : static_cast<double>(r.bind_us + r.exec_us) /
                                static_cast<double>(r.interactions);
  std::printf("  %-10s setup=%6.1fms  bind=%7.1fus/ix  exec=%7.1fus/ix  "
              "e2e=%7.1fus/ix  plans=%zu  cache_hits=%zu  rows=%zu  skipped=%zu\n",
              r.backend.c_str(), r.setup_us / 1000.0,
              r.interactions ? static_cast<double>(r.bind_us) / r.interactions : 0.0,
              per_exec_us, end_to_end_us, r.stats.prepares, r.stats.plan_cache_hits,
              r.rows_out, r.skipped);
  std::printf("{\"bench\":\"backend\",\"workload\":\"%s\",\"backend\":\"%s\","
              "\"rows_db\":%zu,\"rounds\":%zu,\"interactions\":%zu,"
              "\"skipped\":%zu,\"generate_ms\":%lld,\"setup_us\":%lld,"
              "\"bind_us\":%lld,\"exec_us\":%lld,\"exec_us_per_interaction\":%.2f,"
              "\"end_to_end_us_per_interaction\":%.2f,\"prepares\":%zu,"
              "\"plan_cache_hits\":%zu,\"executions\":%zu,\"rows_out\":%zu}\n",
              workload, r.backend.c_str(), rows_db, rounds, r.interactions,
              r.skipped, static_cast<long long>(generate_ms),
              static_cast<long long>(r.setup_us), static_cast<long long>(r.bind_us),
              static_cast<long long>(r.exec_us), per_exec_us, end_to_end_us,
              r.stats.prepares, r.stats.plan_cache_hits, r.stats.executions,
              r.rows_out);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t rounds = smoke ? 1 : 5;
  bench::PrintHeader(
      "End-to-end interface-interaction latency per execution backend\n"
      "(generate once, then per interaction: bind widget state -> execute)");

  struct Sized {
    const char* name;
    size_t rows;
  };
  const Sized workloads[] = {{"flights", smoke ? 500 : 20000},
                             {"sdss", smoke ? 500 : 8000},
                             {"synthetic", smoke ? 200 : 2000}};

  GeneratorOptions opt;
  opt.search.seed = 7;
  if (smoke) {
    opt.search.time_budget_ms = 0;
    opt.search.max_iterations = 10;
  } else {
    opt.search.time_budget_ms = bench::BudgetMs(1500);
  }

  for (const Sized& sized : workloads) {
    auto wl = LoadWorkload(sized.name, sized.rows);
    if (!wl.ok()) {
      std::printf("load %s failed: %s\n", sized.name, wl.status().ToString().c_str());
      return 1;
    }
    auto queries = ParseQueries(wl->log);
    if (!queries.ok()) return 1;

    // Safety net: the backends must agree before we time them.
    Status agree = VerifyBackendsAgree(wl->db, wl->log, AvailableBackends());
    if (!agree.ok()) {
      std::printf("BACKEND MISMATCH on %s: %s\n", sized.name,
                  agree.ToString().c_str());
      return 1;
    }

    Stopwatch gen;
    auto iface = GenerateInterface(wl->log, opt);
    int64_t generate_ms = gen.ElapsedMillis();
    if (!iface.ok()) {
      std::printf("generate %s failed: %s\n", sized.name,
                  iface.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s (%zu rows/table, %zu queries, generate=%lldms):\n",
                sized.name, sized.rows, queries->size(),
                static_cast<long long>(generate_ms));

    double reference_e2e = 0.0;
    for (BackendKind kind : AvailableBackends()) {
      auto run = RunBackend(*wl, *iface, *queries, opt.constants, kind, rounds);
      if (!run.ok()) {
        std::printf("  %s failed: %s\n", std::string(BackendKindName(kind)).c_str(),
                    run.status().ToString().c_str());
        return 1;
      }
      PrintRow(sized.name, sized.rows, rounds, generate_ms, *run);
      double e2e = run->interactions == 0
                       ? 0.0
                       : static_cast<double>(run->bind_us + run->exec_us) /
                             static_cast<double>(run->interactions);
      if (kind == BackendKind::kReference) {
        reference_e2e = e2e;
      } else if (kind == BackendKind::kColumnar && e2e > 0.0) {
        std::printf("  -> columnar end-to-end speedup vs reference: %.2fx\n",
                    reference_e2e / e2e);
      }
    }
  }
  return 0;
}
