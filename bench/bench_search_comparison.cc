// Compares the search algorithms (MCTS vs random / greedy / beam /
// bounded-exhaustive) and the Zhang'17 bottom-up baseline on equal budgets,
// across three workloads. The paper's qualitative claims: MCTS finds
// layout-aware interfaces the bottom-up approach cannot, and poor interfaces
// are "easily possible" (random does not reliably find good ones).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

using namespace ifgen;  // NOLINT

namespace {

void RunWorkload(const char* name, const std::vector<std::string>& sqls,
                 int64_t budget_ms) {
  std::printf("\n-- workload: %s (%zu queries, budget %lld ms per algorithm) --\n",
              name, sqls.size(), static_cast<long long>(budget_ms));
  std::printf("%-12s %10s %8s %8s %10s %10s\n", "algorithm", "cost", "M", "U",
              "widgets", "states");
  double mcts_cost = 0;
  double random_pure_cost = 0;
  double bottomup_cost = 0;
  struct Config {
    Algorithm algo;
    bool pure_random_rollouts;
    const char* tag;
  };
  const Config configs[] = {
      {Algorithm::kMcts, false, "mcts"},
      {Algorithm::kRandom, false, "random"},
      {Algorithm::kRandom, true, "random-pure"},  // the paper's uniform walks
      {Algorithm::kGreedy, false, "greedy"},
      {Algorithm::kBeam, false, "beam"},
      {Algorithm::kBottomUp, false, "bottom-up"},
  };
  for (const Config& cfg : configs) {
    GeneratorOptions opt;
    opt.screen = {100, 40};
    opt.algorithm = cfg.algo;
    opt.search.time_budget_ms = budget_ms;
    opt.search.seed = 3;
    if (cfg.pure_random_rollouts) {
      opt.search.rollout_saturate_prob = 0.0;
      opt.search.rollout_forward_bias = 0.5;
      opt.search.rollout_eval_prob = 0.0;
    }
    auto r = GenerateInterface(sqls, opt);
    if (!r.ok()) {
      std::printf("%-12s failed: %s\n", cfg.tag, r.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %10.2f %8.2f %8.2f %10zu %10zu\n", cfg.tag,
                r->cost.total(), r->cost.m_total, r->cost.u_total,
                r->widgets.CountInteractive(), r->stats.states_expanded);
    if (cfg.algo == Algorithm::kMcts) mcts_cost = r->cost.total();
    if (cfg.pure_random_rollouts) random_pure_cost = r->cost.total();
    if (cfg.algo == Algorithm::kBottomUp) bottomup_cost = r->cost.total();
  }
  std::printf("shape check: mcts <= pure-random (%s), mcts <= bottom-up (%s)\n",
              mcts_cost <= random_pure_cost + 1e-9 ? "yes" : "NO",
              mcts_cost <= bottomup_cost + 1e-9 ? "yes" : "NO");
}

}  // namespace

int main() {
  bench::PrintHeader("Search algorithm comparison (equal budgets)");
  const int64_t budget = bench::BudgetMs(3000);

  RunWorkload("sdss-listing1", SdssListing1(), budget);

  LogSpec value_spec;
  value_spec.num_queries = 8;
  value_spec.num_tables = 2;
  value_spec.num_projection_variants = 2;
  value_spec.num_predicates = 2;
  value_spec.seed = 5;
  RunWorkload("synthetic-values", GenerateLog(value_spec), budget);

  LogSpec multi_spec = value_spec;
  multi_spec.vary_predicate_count = true;
  multi_spec.optional_where = true;
  multi_spec.seed = 6;
  RunWorkload("synthetic-structural", GenerateLog(multi_spec), budget);

  return 0;
}
