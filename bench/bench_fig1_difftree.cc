// Reproduces the paper's running example: Figure 1 (ASTs of q1-q3), the
// initial difftree, and Figure 4 (the factored difftree expressing more
// queries than the input log).
#include <cstdio>

#include "bench/bench_util.h"
#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "sql/unparser.h"

using namespace ifgen;  // NOLINT

int main() {
  bench::PrintHeader("Figure 1/4 reproduction: ASTs and difftrees for q1-q3");
  const std::vector<std::string> sqls = {
      "SELECT Sales FROM sales WHERE cty = 'USA'",
      "SELECT Costs FROM sales WHERE cty = 'EUR'",
      "SELECT Costs FROM sales",
  };
  auto queries = *ParseQueries(sqls);
  std::printf("\n-- ASTs (Figure 1) --\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("q%zu: %s\n", i + 1, queries[i].ToSExpr().c_str());
  }

  DiffTree initial = *BuildInitialTree(queries);
  std::printf("\n-- Initial difftree (ANY over the query ASTs) --\n%s",
              initial.ToString().c_str());
  std::printf("expressible queries: %.0f (exactly the log)\n",
              CountExpressible(initial));

  // Apply the canonical forward chain to obtain the Figure 4 difftree.
  RuleEngine engine;
  DiffTree tree = initial;
  int steps = 0;
  for (; steps < 30; ++steps) {
    auto apps = engine.EnumerateApplications(tree);
    bool advanced = false;
    for (const auto& app : apps) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
  }
  std::printf("\n-- Factored difftree after %d forward rewrites (Figure 4) --\n%s",
              steps, tree.ToString().c_str());
  double coverage = CountExpressible(tree);
  std::printf("expressible queries: %.0f (Figure 4 'can express more queries "
              "than the initial difftree')\n",
              coverage);

  std::printf("\n-- The extra queries the factored interface admits --\n");
  for (const Ast& q : EnumerateQueries(tree, 16)) {
    auto sql = Unparse(q);
    bool in_log = false;
    for (const Ast& orig : queries) in_log |= orig == q;
    std::printf("  %s%s\n", sql.ok() ? sql->c_str() : q.ToSExpr().c_str(),
                in_log ? "   [in log]" : "");
  }
  std::printf("\nresult: coverage grew %.0f -> %.0f while all logged queries "
              "remain expressible\n",
              CountExpressible(initial), coverage);
  return 0;
}
