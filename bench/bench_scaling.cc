// Scaling with log size: state size, fanout, evaluation throughput, and
// best-found cost as the number of input queries grows (the paper's
// "Ongoing Work" section targets interactive run-times; this measures where
// the time goes).
#include <cstdio>

#include "bench/bench_util.h"
#include "cost/evaluator.h"
#include "difftree/builder.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "util/timer.h"
#include "workload/synthetic.h"

using namespace ifgen;  // NOLINT

int main() {
  bench::PrintHeader("Scaling with query-log size (synthetic family)");
  const int64_t budget = bench::BudgetMs(2500);
  std::printf("%8s %12s %8s %12s %12s %12s\n", "queries", "tree nodes", "fanout",
              "evals/sec", "init cost", "mcts cost");
  for (size_t n : {2, 4, 8, 12, 16, 24}) {
    LogSpec spec;
    spec.num_queries = n;
    spec.num_tables = 3;
    spec.num_projection_variants = 2;
    spec.num_predicates = 2;
    spec.seed = 11;
    auto queries = *ParseQueries(GenerateLog(spec));
    DiffTree initial = *BuildInitialTree(queries);
    RuleEngine rules;
    size_t fanout = rules.EnumerateApplications(initial).size();

    // Evaluation throughput (uncached).
    EvalOptions eopts;
    eopts.screen = {100, 40};
    eopts.cache_enabled = false;
    StateEvaluator eval(eopts, queries);
    Rng rng(1);
    Stopwatch watch;
    int evals = 0;
    while (watch.ElapsedMillis() < 300) {
      eval.SampleCost(initial, &rng);
      ++evals;
    }
    double evals_per_sec =
        static_cast<double>(evals) / (watch.ElapsedSeconds() + 1e-9);
    double init_cost = eval.SampleCost(initial, &rng);

    GeneratorOptions opt;
    opt.screen = {100, 40};
    opt.search.time_budget_ms = budget;
    opt.search.seed = 3;
    auto r = GenerateInterfaceFromAsts(queries, opt);
    double mcts_cost = r.ok() ? r->cost.total() : -1.0;

    std::printf("%8zu %12zu %8zu %12.1f %12.2f %12.2f\n", n, initial.NodeCount(),
                fanout, evals_per_sec, init_cost, mcts_cost);
  }
  std::printf("\nexpected shape: tree size and fanout grow with the log; the "
              "evaluator slows; MCTS still lands below the initial cost.\n");
  return 0;
}
