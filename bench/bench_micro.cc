// Micro-benchmarks (google-benchmark) for the hot paths the paper's
// "Ongoing Work" section worries about: parsing, rule enumeration and
// application, expressibility matching, transition planning, and widget-tree
// evaluation (plan-cached vs recomputed — the incremental-evaluation
// optimization the paper proposes).
#include <benchmark/benchmark.h>

#include "cost/cost_model.h"
#include "cost/evaluator.h"
#include "difftree/builder.h"
#include "difftree/match.h"
#include "interface/assignment.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

namespace ifgen {
namespace {

const std::vector<std::string>& SdssLog() {
  static const std::vector<std::string> log = SdssListing1();
  return log;
}

std::vector<Ast> SdssAsts() { return *ParseQueries(SdssLog()); }

/// A partially factored SDSS difftree (root Any2All applied).
DiffTree FactoredSdss(int forward_steps) {
  RuleEngine engine;
  DiffTree tree = *BuildInitialTree(SdssAsts());
  for (int i = 0; i < forward_steps; ++i) {
    bool advanced = false;
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
  }
  return tree;
}

void BM_ParseQuery(benchmark::State& state) {
  const std::string& sql = SdssLog()[0];
  for (auto _ : state) {
    auto q = ParseQuery(sql);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_BuildInitialTree(benchmark::State& state) {
  auto queries = SdssAsts();
  for (auto _ : state) {
    auto t = BuildInitialTree(queries);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BuildInitialTree);

void BM_EnumerateApplications(benchmark::State& state) {
  RuleEngine engine;
  DiffTree tree = FactoredSdss(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto apps = engine.EnumerateApplications(tree);
    benchmark::DoNotOptimize(apps);
  }
  state.counters["fanout"] = static_cast<double>(
      engine.EnumerateApplications(tree).size());
  state.counters["nodes"] = static_cast<double>(tree.NodeCount());
}
BENCHMARK(BM_EnumerateApplications)->Arg(0)->Arg(1)->Arg(8);

void BM_ApplyRule(benchmark::State& state) {
  RuleEngine engine;
  DiffTree tree = FactoredSdss(1);
  auto apps = engine.EnumerateApplications(tree);
  size_t i = 0;
  for (auto _ : state) {
    auto next = engine.Apply(tree, apps[i++ % apps.size()]);
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_ApplyRule);

void BM_MatchQuery(benchmark::State& state) {
  DiffTree tree = FactoredSdss(static_cast<int>(state.range(0)));
  auto queries = SdssAsts();
  size_t i = 0;
  for (auto _ : state) {
    auto m = MatchQuery(tree, queries[i++ % queries.size()]);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchQuery)->Arg(0)->Arg(8);

void BM_PlanTransitions(benchmark::State& state) {
  DiffTree tree = FactoredSdss(8);
  auto queries = SdssAsts();
  for (auto _ : state) {
    auto plan = PlanTransitions(tree, queries, 8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanTransitions);

void BM_EvaluateAssignment_Recompute(benchmark::State& state) {
  // The unoptimized path: derivations re-enumerated per widget tree.
  DiffTree tree = FactoredSdss(8);
  auto queries = SdssAsts();
  CostConstants constants;
  WidgetAssigner assigner(tree, constants);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  CostModel model(constants, {100, 40});
  for (auto _ : state) {
    WidgetTree copy = *wt;
    auto cost = model.Evaluate(tree, &copy, queries);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_EvaluateAssignment_Recompute);

void BM_EvaluateAssignment_PlanCached(benchmark::State& state) {
  // The optimized path: the transition plan is computed once per state.
  DiffTree tree = FactoredSdss(8);
  auto queries = SdssAsts();
  CostConstants constants;
  WidgetAssigner assigner(tree, constants);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  CostModel model(constants, {100, 40});
  TransitionPlan plan = PlanTransitions(tree, queries, 8);
  for (auto _ : state) {
    WidgetTree copy = *wt;
    auto cost = model.EvaluateWithPlan(plan, &copy);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_EvaluateAssignment_PlanCached);

void BM_SampleCost(benchmark::State& state) {
  DiffTree tree = FactoredSdss(8);
  auto queries = SdssAsts();
  EvalOptions opts;
  opts.screen = {100, 40};
  opts.cache_enabled = false;
  StateEvaluator eval(opts, queries);
  Rng rng(1);
  for (auto _ : state) {
    double c = eval.SampleCost(tree, &rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SampleCost);

void BM_CanonicalHash(benchmark::State& state) {
  DiffTree tree = FactoredSdss(8);
  for (auto _ : state) {
    uint64_t h = tree.CanonicalHash();
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_CanonicalHash);

void BM_SyntheticLogGeneration(benchmark::State& state) {
  LogSpec spec;
  spec.num_queries = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto log = GenerateLog(spec);
    benchmark::DoNotOptimize(log);
  }
}
BENCHMARK(BM_SyntheticLogGeneration)->Arg(8)->Arg(32);

}  // namespace
}  // namespace ifgen

BENCHMARK_MAIN();
