#pragma once

// Shared helpers for the reproduction harnesses. Every harness binary runs
// with a small default wall-clock budget so the whole bench sweep finishes
// in minutes; set IFGEN_BUDGET_MS to raise it (the paper used ~60000 ms per
// interface).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/interface_generator.h"
#include "interface/render.h"

namespace ifgen::bench {

inline int64_t BudgetMs(int64_t fallback) {
  const char* env = std::getenv("IFGEN_BUDGET_MS");
  return env != nullptr ? std::atoll(env) : fallback;
}

/// IFGEN_BENCH_SMOKE=1 shrinks sweeps to seconds for the CI bench-smoke
/// job: tiny iteration counts and data sizes, same code paths and JSON row
/// schema (validated by scripts/check_bench_json.py).
inline bool SmokeMode() {
  const char* env = std::getenv("IFGEN_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

inline void PrintHeader(const char* title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

inline void PrintInterfaceSummary(const char* tag, const GeneratedInterface& iface) {
  std::printf("%-28s cost=%7.2f  M=%6.2f  U=%6.2f  size=%3dx%-3d  widgets=%zu  "
              "coverage~%.0f\n",
              tag, iface.cost.total(), iface.cost.m_total, iface.cost.u_total,
              iface.cost.layout_width, iface.cost.layout_height,
              iface.widgets.CountInteractive(), iface.coverage);
}

inline void PrintRendered(const GeneratedInterface& iface, const Screen& screen) {
  std::string art = RenderAscii(iface.widgets, screen);
  std::printf("%s\n", art.c_str());
}

}  // namespace ifgen::bench
