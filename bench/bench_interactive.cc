// Incremental-vs-full interaction latency per transition class.
//
// Two InteractiveRuntime instances over the same columnar backend replay an
// identical scripted interaction walk — log replays (shape changes + memo
// revisits), ANY-option sweeps up and down (param rebinds; tighten/loosen on
// directional predicates), and OPT toggles — one with delta maintenance
// enabled, one forced to full re-execution. Per-step latency is bucketed by
// the step's transition class (engine/delta_exec.h), so each JSON row
// compares incremental against full maintenance for one class on one
// workload. Expect `tighten`/`loosen`/`rebind` rows to show speedup > 1
// (selection deltas and memo hits) and `shape_change` to be ~1 (both arms
// execute fully).
//
// JSON rows (one line each, `"bench":"interactive"`) are documented in
// bench/README.md. IFGEN_BENCH_SMOKE=1 shrinks everything for CI.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "difftree/selection.h"
#include "engine/delta_exec.h"
#include "runtime/interactive.h"
#include "sql/parser.h"
#include "util/timer.h"
#include "workload/loader.h"

using namespace ifgen;  // NOLINT

namespace {

struct ScriptStep {
  enum class Kind : uint8_t { kAny, kOpt, kLoad } kind = Kind::kLoad;
  int choice_id = 0;
  int arg = 0;
  size_t qidx = 0;
};

/// Deterministic interaction script: two log replays, every ANY swept up
/// then down, every OPT toggled off/on. The down-sweep and the second
/// replay revisit states, exercising the memo; monotone numeric ANY options
/// exercise tighten/loosen.
std::vector<ScriptStep> BuildScript(const DiffTree& tree, size_t num_queries) {
  std::vector<ScriptStep> script;
  for (int replay = 0; replay < 2; ++replay) {
    for (size_t q = 0; q < num_queries; ++q) {
      script.push_back({ScriptStep::Kind::kLoad, 0, 0, q});
    }
  }
  ChoiceIndex index(tree);
  for (size_t id = 0; id < index.size(); ++id) {
    const DiffTree* node = index.node(id);
    if (node->kind == DKind::kAny && node->children.size() <= 12) {
      for (size_t opt = 0; opt < node->children.size(); ++opt) {
        script.push_back({ScriptStep::Kind::kAny, static_cast<int>(id),
                          static_cast<int>(opt), 0});
      }
      for (size_t opt = node->children.size(); opt-- > 0;) {
        script.push_back({ScriptStep::Kind::kAny, static_cast<int>(id),
                          static_cast<int>(opt), 0});
      }
    } else if (node->kind == DKind::kOpt) {
      script.push_back({ScriptStep::Kind::kOpt, static_cast<int>(id), 0, 0});
      script.push_back({ScriptStep::Kind::kOpt, static_cast<int>(id), 1, 0});
    }
  }
  return script;
}

Result<InteractiveRuntime::StepReport> ApplyStep(InteractiveRuntime* rt,
                                                 const std::vector<Ast>& queries,
                                                 const ScriptStep& s) {
  switch (s.kind) {
    case ScriptStep::Kind::kAny:
      return rt->SetAnyChoice(s.choice_id, s.arg);
    case ScriptStep::Kind::kOpt:
      return rt->SetOptPresent(s.choice_id, s.arg != 0);
    case ScriptStep::Kind::kLoad:
      return rt->LoadQuery(queries[s.qidx]);
  }
  return Status::Invalid("bad step");
}

struct ClassBucket {
  size_t steps = 0;
  size_t incremental_steps = 0;
  int64_t inc_us = 0;
  int64_t full_us = 0;
};

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  bench::PrintHeader(
      "Incremental vs full interaction latency per transition class\n"
      "(same scripted widget walk; delta maintenance on vs forced full re-exec)");

  struct Sized {
    const char* name;
    size_t rows;
  };
  const Sized workloads[] = {{"flights", smoke ? size_t{500} : size_t{20000}},
                             {"sdss", smoke ? size_t{500} : size_t{8000}},
                             {"synthetic", smoke ? size_t{200} : size_t{2000}}};

  GeneratorOptions opt;
  opt.search.seed = 7;
  if (smoke) {
    opt.search.time_budget_ms = 0;
    opt.search.max_iterations = 10;
  } else {
    opt.search.time_budget_ms = bench::BudgetMs(1500);
  }

  for (const Sized& sized : workloads) {
    auto wl = LoadWorkload(sized.name, sized.rows);
    if (!wl.ok()) {
      std::printf("load %s failed: %s\n", sized.name, wl.status().ToString().c_str());
      return 1;
    }
    auto queries = ParseQueries(wl->log);
    if (!queries.ok()) return 1;
    auto iface = GenerateInterface(wl->log, opt);
    if (!iface.ok()) {
      std::printf("generate %s failed: %s\n", sized.name,
                  iface.status().ToString().c_str());
      return 1;
    }

    auto backend = MakeBackendFor(*wl, BackendKind::kColumnar);
    if (!backend.ok()) return 1;
    std::shared_ptr<ExecutionBackend> shared(std::move(*backend));

    InteractiveRuntime::Options delta_on;
    InteractiveRuntime::Options delta_off;
    delta_off.enable_delta = false;
    auto rt_inc = InteractiveRuntime::Create(*iface, opt.constants, shared, delta_on);
    auto rt_full =
        InteractiveRuntime::Create(*iface, opt.constants, shared, delta_off);
    if (!rt_inc.ok() || !rt_full.ok()) {
      const Status& bad = rt_inc.ok() ? rt_full.status() : rt_inc.status();
      std::printf("runtime create failed on %s: %s\n", sized.name,
                  bad.ToString().c_str());
      return 1;
    }

    std::vector<ScriptStep> script =
        BuildScript((*rt_inc)->session().difftree(), queries->size());

    std::map<std::string, ClassBucket> buckets;
    size_t skipped = 0;
    for (const ScriptStep& s : script) {
      Stopwatch inc_watch;
      auto r_inc = ApplyStep(rt_inc->get(), *queries, s);
      int64_t inc_us = inc_watch.ElapsedMicros();
      Stopwatch full_watch;
      auto r_full = ApplyStep(rt_full->get(), *queries, s);
      int64_t full_us = full_watch.ElapsedMicros();
      if (!r_inc.ok() || !r_full.ok()) {
        ++skipped;  // inactive widget in the current derivation — same on both
        continue;
      }
      ClassBucket& b = buckets[std::string(TransitionClassName(r_inc->transition))];
      ++b.steps;
      if (r_inc->incremental) ++b.incremental_steps;
      b.inc_us += inc_us;
      b.full_us += full_us;
    }

    auto counters = (*rt_inc)->counters();
    std::printf("\n%s (%zu rows/table, %zu script steps, %zu skipped; "
                "incremental: %zu noop, %zu memo, %zu delta, %zu retruncate, "
                "%zu full):\n",
                sized.name, sized.rows, script.size(), skipped, counters.noops,
                counters.cache_hits, counters.delta_execs, counters.retruncates,
                counters.full_execs);
    for (const auto& [cls, b] : buckets) {
      double inc_per = b.steps ? static_cast<double>(b.inc_us) / b.steps : 0.0;
      double full_per = b.steps ? static_cast<double>(b.full_us) / b.steps : 0.0;
      double speedup = inc_per > 0.0 ? full_per / inc_per : 0.0;
      std::printf("  %-13s steps=%4zu  incremental=%4zu  inc=%8.1fus/step  "
                  "full=%8.1fus/step  speedup=%.2fx\n",
                  cls.c_str(), b.steps, b.incremental_steps, inc_per, full_per,
                  speedup);
      std::printf("{\"bench\":\"interactive\",\"workload\":\"%s\","
                  "\"backend\":\"columnar\",\"transition\":\"%s\","
                  "\"rows_db\":%zu,\"steps\":%zu,\"incremental_steps\":%zu,"
                  "\"inc_us_per_step\":%.2f,\"full_us_per_step\":%.2f,"
                  "\"speedup\":%.3f}\n",
                  sized.name, cls.c_str(), sized.rows, b.steps,
                  b.incremental_steps, inc_per, full_per, speedup);
    }
    // The headline claim: incremental maintenance wins on the classes that
    // admit it (param rebinds served by memo/selection deltas).
    for (const char* cls : {"tighten", "loosen", "rebind", "limit_only"}) {
      auto it = buckets.find(cls);
      if (it == buckets.end() || it->second.steps == 0) continue;
      double speedup = it->second.inc_us > 0
                           ? static_cast<double>(it->second.full_us) /
                                 static_cast<double>(it->second.inc_us)
                           : 0.0;
      std::printf("  -> %s incremental beats full: %s (%.2fx)\n", cls,
                  it->second.full_us >= it->second.inc_us ? "yes" : "NO", speedup);
    }
  }
  return 0;
}
