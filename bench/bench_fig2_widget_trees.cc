// Reproduces Figures 2/3: three alternative interfaces for the q1-q3 log —
// (a) one button per query (the initial difftree), (b) factored widgets on a
// narrow screen, (c) factored widgets using extra width — with their widget
// trees and costs under the paper's cost function.
#include <cstdio>

#include "bench/bench_util.h"
#include "cost/evaluator.h"
#include "difftree/builder.h"
#include "rules/rule.h"
#include "sql/parser.h"

using namespace ifgen;  // NOLINT

namespace {

DiffTree Factored(const std::vector<Ast>& queries) {
  RuleEngine engine;
  DiffTree tree = *BuildInitialTree(queries);
  for (int i = 0; i < 30; ++i) {
    bool advanced = false;
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
  }
  return tree;
}

void Show(const char* tag, const DiffTree& tree, const std::vector<Ast>& queries,
          Screen screen) {
  EvalOptions opts;
  opts.screen = screen;
  StateEvaluator eval(opts, queries);
  Rng rng(7);
  auto best = eval.FindBest(tree, &rng);
  if (!best.ok()) {
    std::printf("%s: no valid widget tree (%s)\n", tag,
                best.status().ToString().c_str());
    return;
  }
  std::printf("\n-- %s (screen %dx%d) --\n", tag, screen.width, screen.height);
  std::printf("widget tree (Figure 3 analogue):\n%s", best->tree.ToString().c_str());
  std::printf("cost: M=%.2f U=%.2f total=%.2f\n", best->cost.m_total,
              best->cost.u_total, best->cost.total());
  WidgetTree wt = best->tree;
  GeneratedInterface tmp;
  tmp.widgets = wt;
  std::printf("rendered (Figure 2 analogue):\n%s\n",
              RenderAscii(wt, screen).c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 2/3 reproduction: alternative interfaces for q1-q3");
  auto queries = *ParseQueries(std::vector<std::string>{
      "SELECT Sales FROM sales WHERE cty = 'USA'",
      "SELECT Costs FROM sales WHERE cty = 'EUR'",
      "SELECT Costs FROM sales",
  });

  DiffTree initial = *BuildInitialTree(queries);
  DiffTree factored = Factored(queries);

  // (a): the whole-query layout — widgets replace the root of the AST.
  Show("(a) initial difftree: one widget over whole queries", initial, queries,
       {60, 20});
  // (b): factored difftree, narrow screen (the paper's dropdown/toggle mix).
  Show("(b) factored difftree, narrow screen", factored, queries, {24, 3});
  // (c): factored difftree, wider screen (buttons become affordable).
  Show("(c) factored difftree, wide screen", factored, queries, {60, 20});

  std::printf("expected shape: (b)/(c) factored interfaces beat (a) on total "
              "cost; (c) trades width for cheaper widgets\n");
  return 0;
}
