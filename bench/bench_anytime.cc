// Anytime behavior: best-cost-so-far vs wall clock for MCTS and the random
// baseline on Listing 1 (the paper runs MCTS "for around 1 minute"; the
// curve shows what any budget buys).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "sql/parser.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

namespace {

void PrintTrace(const char* name, const SearchResult& r) {
  std::printf("\n%s best-cost trace (initial %.2f):\n", name, r.stats.initial_cost);
  std::printf("%10s %12s\n", "ms", "best cost");
  for (const BestTrace& t : r.stats.trace) {
    std::printf("%10lld %12.2f\n", static_cast<long long>(t.ms), t.cost);
  }
  std::printf("final: %.2f after %lld ms (%zu iterations, %zu rollouts)\n",
              r.best_cost, static_cast<long long>(r.stats.elapsed_ms),
              r.stats.iterations, r.stats.rollouts);
}

}  // namespace

int main() {
  bench::PrintHeader("Anytime curves on Listing 1 (cost vs wall clock)");
  const int64_t budget = bench::BudgetMs(5000);
  auto queries = *ParseQueries(SdssListing1());
  DiffTree initial = *BuildInitialTree(queries);

  for (Algorithm algo : {Algorithm::kMcts, Algorithm::kRandom}) {
    RuleEngine rules;
    EvalOptions eopts;
    eopts.screen = {100, 40};
    StateEvaluator eval(eopts, queries);
    SearchOptions sopts;
    sopts.time_budget_ms = budget;
    sopts.seed = 3;
    auto searcher = MakeSearcher(algo, &rules, &eval, sopts);
    auto r = searcher->Run(initial);
    if (r.ok()) {
      PrintTrace(AlgorithmName(algo).data(), *r);
    }
  }
  std::printf("\nexpected shape: both improve early; MCTS keeps improving and "
              "ends at a lower cost than random under the same budget.\n");
  return 0;
}
