// Anytime behavior under deadline-aware time control: for each workload ×
// searcher × deadline, run the search with TimeControlOptions::deadline_ms
// and a ProgressSink attached, and report time-to-first-result plus the
// cost reached at the deadline against a fixed-iteration baseline given the
// same iteration count (what the deadline actually bought vs what those
// iterations buy unrushed). Also prints the classic best-cost-vs-wall-clock
// curve on Listing 1 (the paper runs MCTS "for around 1 minute").
//
// JSON rows (one line each, `"bench":"anytime"`) are documented in
// bench/README.md and validated by scripts/check_bench_json.py.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "search/mcts.h"
#include "search/parallel_mcts.h"
#include "search/progress.h"
#include "search/timeman.h"
#include "sql/parser.h"
#include "util/json.h"
#include "workload/loader.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

namespace {

void PrintTrace(const char* name, const SearchResult& r) {
  std::printf("\n%s best-cost trace (initial %.2f):\n", name, r.stats.initial_cost);
  std::printf("%10s %12s\n", "ms", "best cost");
  for (const BestTrace& t : r.stats.trace) {
    std::printf("%10lld %12.2f\n", static_cast<long long>(t.ms), t.cost);
  }
  std::printf("final: %.2f after %lld ms (%zu iterations, %zu rollouts)\n",
              r.best_cost, static_cast<long long>(r.stats.elapsed_ms),
              r.stats.iterations, r.stats.rollouts);
}

struct BenchWorkload {
  std::string name;
  std::vector<Ast> queries;
};

std::vector<BenchWorkload> AnytimeWorkloads(size_t max_queries) {
  std::vector<BenchWorkload> out;
  for (const std::string& name : WorkloadNames()) {
    auto bundle = LoadWorkload(name);
    if (!bundle.ok()) continue;
    std::vector<std::string> sqls(
        bundle->log.begin(),
        bundle->log.begin() + std::min(max_queries, bundle->log.size()));
    auto parsed = ParseQueries(sqls);
    if (!parsed.ok()) continue;
    out.push_back({name, std::move(*parsed)});
  }
  return out;
}

struct SearcherKind {
  const char* name;
  size_t threads;  ///< 0 = serial MctsSearcher
};

Result<SearchResult> RunSearch(const SearcherKind& kind, RuleEngine* rules,
                               StateEvaluator* eval, const SearchOptions& opts,
                               const DiffTree& initial) {
  if (kind.threads == 0) {
    MctsSearcher s(rules, eval, opts);
    return s.Run(initial);
  }
  ParallelOptions popts;
  popts.num_threads = kind.threads;
  popts.mode = ParallelMode::kRoot;
  ParallelMctsSearcher s(rules, eval, opts, popts);
  return s.Run(initial);
}

void DeadlineSweep() {
  bench::PrintHeader("Deadline sweep: cost at deadline vs fixed-iteration baseline");
  const bool smoke = bench::SmokeMode();
  const size_t max_queries = smoke ? 4 : 8;
  const std::vector<int64_t> deadlines =
      smoke ? std::vector<int64_t>{30, 60} : std::vector<int64_t>{50, 200, 1000};
  const std::vector<SearcherKind> searchers = {
      {"mcts", 0}, {"mcts-root", smoke ? size_t{2} : size_t{4}}};

  std::printf("%-10s %-10s %9s %8s %12s %12s %10s\n", "workload", "searcher",
              "deadline", "ttfr_ms", "cost@dl", "base_cost", "stop");
  for (const BenchWorkload& w : AnytimeWorkloads(max_queries)) {
    DiffTree initial = *BuildInitialTree(w.queries);
    for (const SearcherKind& kind : searchers) {
      for (int64_t deadline : deadlines) {
        SearchOptions opts;
        opts.time_budget_ms = 0;
        opts.max_iterations = 0;  // the deadline is the only bound
        opts.seed = 3;
        opts.time_control.deadline_ms = deadline;
        auto sink = std::make_shared<ProgressSink>();
        opts.progress = sink;

        RuleEngine rules;
        EvalOptions eopts;
        eopts.screen = {100, 40};
        StateEvaluator eval(eopts, w.queries);
        auto r = RunSearch(kind, &rules, &eval, opts, initial);
        if (!r.ok()) continue;

        auto events = sink->EventsAfter(0);
        const int64_t ttfr_ms = events.empty() ? -1 : events.front().ms;

        // Baseline: the same iteration count with no clock pressure — how
        // much (if anything) the deadline machinery costs in final quality.
        SearchOptions base_opts;
        base_opts.time_budget_ms = 0;
        base_opts.max_iterations = std::max<size_t>(1, r->stats.iterations);
        base_opts.seed = 3;
        RuleEngine base_rules;
        StateEvaluator base_eval(eopts, w.queries);
        auto base = RunSearch(kind, &base_rules, &base_eval, base_opts, initial);
        if (!base.ok()) continue;

        std::printf("%-10s %-10s %9lld %8lld %12.2f %12.2f %10s\n",
                    w.name.c_str(), kind.name, static_cast<long long>(deadline),
                    static_cast<long long>(ttfr_ms), r->best_cost,
                    base->best_cost, StopReasonName(r->stats.stop_reason).data());
        std::printf(
            "{\"bench\":\"anytime\",\"workload\":\"%s\",\"searcher\":\"%s\","
            "\"deadline_ms\":%lld,\"time_to_first_result_ms\":%lld,"
            "\"cost_at_deadline\":%s,\"iterations\":%zu,\"stop_reason\":\"%s\","
            "\"baseline_iterations\":%zu,\"baseline_cost\":%s}\n",
            w.name.c_str(), kind.name, static_cast<long long>(deadline),
            static_cast<long long>(ttfr_ms), JsonDouble(r->best_cost).c_str(),
            r->stats.iterations, StopReasonName(r->stats.stop_reason).data(),
            base->stats.iterations, JsonDouble(base->best_cost).c_str());
      }
    }
  }
}

void Listing1Curves() {
  bench::PrintHeader("Anytime curves on Listing 1 (cost vs wall clock)");
  const int64_t budget = bench::BudgetMs(bench::SmokeMode() ? 300 : 5000);
  auto queries = *ParseQueries(SdssListing1());
  DiffTree initial = *BuildInitialTree(queries);

  for (Algorithm algo : {Algorithm::kMcts, Algorithm::kRandom}) {
    RuleEngine rules;
    EvalOptions eopts;
    eopts.screen = {100, 40};
    StateEvaluator eval(eopts, queries);
    SearchOptions sopts;
    sopts.time_budget_ms = budget;
    sopts.seed = 3;
    auto searcher = MakeSearcher(algo, &rules, &eval, sopts);
    auto r = searcher->Run(initial);
    if (r.ok()) {
      PrintTrace(AlgorithmName(algo).data(), *r);
    }
  }
  std::printf("\nexpected shape: both improve early; MCTS keeps improving and "
              "ends at a lower cost than random under the same budget.\n");
}

}  // namespace

int main() {
  DeadlineSweep();
  Listing1Curves();
  return 0;
}
