// Quantifies the paper's search-space claims on Listing 1: "The fanout is as
// high as 50, and a search path can be as long as 100 steps."
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "difftree/builder.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

int main() {
  bench::PrintHeader("Search-space shape on Listing 1 (paper: fanout ~50, paths ~100)");
  auto queries = *ParseQueries(SdssListing1());
  RuleEngine engine;
  DiffTree initial = *BuildInitialTree(queries);

  std::printf("initial state: %zu difftree nodes, fanout %zu\n",
              initial.NodeCount(),
              engine.EnumerateApplications(initial).size());

  Rng rng(13);
  const int kWalks = 40;
  const size_t kMaxSteps = 220;
  std::vector<size_t> fanouts;
  std::vector<size_t> path_lengths;
  for (int w = 0; w < kWalks; ++w) {
    DiffTree state = initial;
    size_t steps = 0;
    for (; steps < kMaxSteps; ++steps) {
      auto apps = engine.EnumerateApplications(state);
      if (apps.empty()) break;
      fanouts.push_back(apps.size());
      bool advanced = false;
      for (int attempt = 0; attempt < 4 && !advanced && !apps.empty(); ++attempt) {
        size_t pick = rng.UniformIndex(apps.size());
        auto next = engine.Apply(state, apps[pick]);
        if (next.ok()) {
          state = std::move(next).MoveValueUnsafe();
          advanced = true;
        } else {
          apps.erase(apps.begin() + static_cast<long>(pick));
        }
      }
      if (!advanced) break;
    }
    path_lengths.push_back(steps);
  }

  auto pct = [](std::vector<size_t> v, double p) {
    std::sort(v.begin(), v.end());
    return v[static_cast<size_t>(p * static_cast<double>(v.size() - 1))];
  };
  size_t fan_max = *std::max_element(fanouts.begin(), fanouts.end());
  size_t len_max = *std::max_element(path_lengths.begin(), path_lengths.end());
  double fan_mean = 0;
  for (size_t f : fanouts) fan_mean += static_cast<double>(f);
  fan_mean /= static_cast<double>(fanouts.size());

  std::printf("\nfanout over %zu visited states:\n", fanouts.size());
  std::printf("  mean=%.1f  p50=%zu  p90=%zu  p99=%zu  max=%zu\n", fan_mean,
              pct(fanouts, 0.5), pct(fanouts, 0.9), pct(fanouts, 0.99), fan_max);
  std::printf("random-walk path lengths (%d walks, cap %zu):\n", kWalks, kMaxSteps);
  std::printf("  p50=%zu  p90=%zu  max=%zu\n", pct(path_lengths, 0.5),
              pct(path_lengths, 0.9), len_max);
  std::printf("\npaper claim check: fanout reaches ~50+ (%s), paths reach 100+ "
              "steps (%s)\n",
              fan_max >= 50 ? "yes" : "NO", len_max >= 100 ? "yes" : "NO");
  return 0;
}
