// Persistent experience warm start (docs/learning.md): cold vs warm
// iterations-to-equal-cost on one workload.
//
// Pass 1 (cold) runs an iteration-capped MCTS job with `experience` on
// against an empty store and takes its final cost as the target. The
// store's records then round-trip through SaveTo/LoadFrom (the same wire
// format the servers persist), and pass 2 (warm) runs the identical spec
// against the reloaded store. Both arms report the first best-so-far trace
// iteration at or under the target: the warm arm reaching it in fewer
// iterations is the whole point of the store (root-action virtual visits +
// pre-seeded transposition/delta caches).
//
// Emits one `"bench":"experience"` JSON row per arm, documented in
// bench/README.md and validated by scripts/check_bench_json.py.
// IFGEN_BENCH_SMOKE=1 shrinks the sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "learn/experience.h"
#include "runtime/service.h"
#include "util/json.h"
#include "util/timer.h"
#include "workload/loader.h"

using namespace ifgen;  // NOLINT

namespace {

struct ArmResult {
  bool warm = false;
  size_t iterations = 0;
  double best_cost = 0.0;
  double target_cost = 0.0;
  size_t iterations_to_target = 0;
  size_t seeded = 0;
  double ms = 0.0;
  bool ok = false;
};

/// First best-so-far iteration with cost <= target; the run's final
/// iteration count when the curve never dips under it.
size_t IterationsToTarget(const SearchStats& stats, double target) {
  for (const BestTrace& t : stats.trace) {
    if (t.cost <= target + 1e-9) return t.iteration;
  }
  return stats.iterations;
}

/// The arm's best SAMPLED cost — the last best-so-far trace point. The
/// final `cost.total()` comes from the thorough FindBest pass and sits
/// below every sampled point, so it can never anchor an in-search target.
double BestSampledCost(const GeneratedInterface& result) {
  return result.stats.trace.empty() ? result.cost.total()
                                    : result.stats.trace.back().cost;
}

ArmResult RunArm(const std::vector<std::string>& log, size_t iterations,
                 std::shared_ptr<learn::ExperienceStore> store, bool warm,
                 double target) {
  ArmResult out;
  out.warm = warm;

  GenerationService::Options sopts;
  sopts.num_threads = 1;
  sopts.cache_capacity = 0;  // the warm arm must re-execute, not cache-hit
  sopts.experience = std::move(store);
  GenerationService service(sopts);

  JobSpec spec;
  spec.sqls = log;
  spec.options.experience = true;
  spec.options.search.time_budget_ms = 0;  // iteration-capped: deterministic
  spec.options.search.max_iterations = iterations;
  spec.options.search.seed = 7;

  Stopwatch watch;
  auto result = service.Submit(spec).get();
  out.ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  if (!result.ok()) {
    std::fprintf(stderr, "%s arm failed: %s\n", warm ? "warm" : "cold",
                 result.status().ToString().c_str());
    return out;
  }
  out.iterations = result->stats.iterations;
  out.best_cost = result->cost.total();
  out.target_cost = warm ? target : BestSampledCost(*result);
  out.iterations_to_target = IterationsToTarget(result->stats, out.target_cost);
  out.seeded = service.counters_snapshot().learn_seeded;
  out.ok = true;
  return out;
}

void EmitRow(const ArmResult& r, const char* workload) {
  std::printf(
      "{\"bench\":\"experience\",\"workload\":\"%s\",\"warm\":%s,"
      "\"iterations\":%zu,\"best_cost\":%s,\"target_cost\":%s,"
      "\"iterations_to_target\":%zu,\"seeded\":%zu,\"ms\":%s}\n",
      workload, r.warm ? "true" : "false", r.iterations,
      JsonDouble(r.best_cost).c_str(), JsonDouble(r.target_cost).c_str(),
      r.iterations_to_target, r.seeded, JsonDouble(r.ms).c_str());
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  bench::PrintHeader("Persistent experience: cold vs warm iterations-to-equal-cost");

  const size_t iterations = smoke ? 80 : 400;
  for (const char* workload : {"flights", "sdss"}) {
    auto bundle = LoadWorkload(workload, smoke ? 200 : 0);
    if (!bundle.ok()) {
      std::fprintf(stderr, "workload %s: %s\n", workload,
                   bundle.status().ToString().c_str());
      return 1;
    }

    // Cold arm: empty store; its best sampled cost is the bar the warm arm
    // chases.
    auto cold_store = std::make_shared<learn::ExperienceStore>();
    ArmResult cold = RunArm(bundle->log, iterations, cold_store,
                            /*warm=*/false, /*target=*/0.0);
    if (!cold.ok) return 1;

    // Persist + reload: the warm arm reads exactly what a restarted server
    // would, not the in-memory store object.
    const std::string path = "bench_experience.exp";
    if (Status st = cold_store->SaveTo(path); !st.ok()) {
      std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
      return 1;
    }
    auto warm_store = std::make_shared<learn::ExperienceStore>();
    auto loaded = warm_store->LoadFrom(path);
    std::remove(path.c_str());
    if (!loaded.ok() || *loaded == 0) {
      std::fprintf(stderr, "reload produced no records\n");
      return 1;
    }

    ArmResult warm = RunArm(bundle->log, iterations, warm_store,
                            /*warm=*/true, cold.target_cost);
    if (!warm.ok) return 1;

    std::printf(
        "%s cold: %zu iterations, cost %.3f (target hit at %zu)\n"
        "%s warm: %zu iterations, cost %.3f, target hit at %zu "
        "(%zu record(s) persisted, %zu seeded)\n",
        workload, cold.iterations, cold.best_cost, cold.iterations_to_target,
        workload, warm.iterations, warm.best_cost, warm.iterations_to_target,
        *loaded, warm.seeded);
    EmitRow(cold, workload);
    EmitRow(warm, workload);
  }
  return 0;
}
