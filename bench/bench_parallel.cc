// Parallel search runtime: throughput and time-to-best-cost vs. thread
// count on the flights and SDSS workloads, plus GenerationService batch
// throughput and result-cache behavior.
//
// Emits one JSON row per configuration (machine-readable alongside the
// human-readable header lines, like the other harnesses):
//   {"bench":"parallel","workload":"flights","mode":"root","threads":4,...}
//
// Set IFGEN_BUDGET_MS to change the per-search wall-clock budget and
// IFGEN_BENCH_THREADS (comma-free max, e.g. 8) to change the sweep ceiling.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cost/evaluator.h"
#include "difftree/builder.h"
#include "runtime/service.h"
#include "search/parallel_mcts.h"
#include "sql/parser.h"
#include "util/timer.h"
#include "workload/flights.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

namespace {

struct Workload {
  const char* name;
  std::vector<std::string> sqls;
};

void PrintRow(const char* workload, const char* mode, size_t threads, int64_t ms,
              double best_cost, size_t iterations, size_t evals, size_t tt_hits,
              int64_t ms_to_best) {
  // Human-readable line...
  std::printf("%-8s %-6s threads=%zu  %6lld ms  cost=%8.2f  iters=%6zu  "
              "evals=%7zu  tt_hits=%6zu  t_best=%5lld ms\n",
              workload, mode, threads, static_cast<long long>(ms), best_cost,
              iterations, evals, tt_hits, static_cast<long long>(ms_to_best));
  // ...and the JSON row (one line, greppable).
  std::printf("{\"bench\":\"parallel\",\"workload\":\"%s\",\"mode\":\"%s\","
              "\"threads\":%zu,\"ms\":%lld,\"best_cost\":%.4f,\"iterations\":%zu,"
              "\"evaluations\":%zu,\"tt_hits\":%zu,\"ms_to_best\":%lld}\n",
              workload, mode, threads, static_cast<long long>(ms), best_cost,
              iterations, evals, tt_hits, static_cast<long long>(ms_to_best));
}

int64_t TimeToBest(const SearchStats& stats) {
  return stats.trace.empty() ? 0 : stats.trace.back().ms;
}

void SweepWorkload(const Workload& w, int64_t budget_ms) {
  auto queries = *ParseQueries(w.sqls);
  DiffTree initial = *BuildInitialTree(queries);
  RuleEngine rules;

  for (size_t threads : {1, 2, 4, 8}) {
    for (ParallelMode mode : {ParallelMode::kRoot, ParallelMode::kLeaf}) {
      if (threads == 1 && mode == ParallelMode::kLeaf) continue;  // same as serial
      // Fresh evaluator per run: a warm cache would flatter later configs.
      EvalOptions eopts;
      eopts.screen = {100, 40};
      StateEvaluator eval(eopts, queries);

      SearchOptions sopts;
      sopts.time_budget_ms = budget_ms;
      sopts.seed = 7;
      ParallelOptions popts;
      popts.num_threads = threads;
      popts.mode = mode;

      ParallelMctsSearcher searcher(&rules, &eval, sopts, popts);
      Stopwatch watch;
      auto r = searcher.Run(initial);
      int64_t ms = watch.ElapsedMillis();
      if (!r.ok()) {
        std::printf("%-8s threads=%zu FAILED: %s\n", w.name, threads,
                    r.status().ToString().c_str());
        continue;
      }
      const char* mode_name = threads == 1 ? "serial" : ParallelModeName(mode).data();
      PrintRow(w.name, mode_name, threads, ms, r->best_cost, r->stats.iterations,
               eval.evaluations(), r->stats.transposition_hits, TimeToBest(r->stats));
    }
  }
}

void BenchService(int64_t budget_ms) {
  bench::PrintHeader("GenerationService: concurrent batch + result cache");
  GenerationService::Options sopts;
  sopts.num_threads = 4;
  GenerationService service(sopts);

  std::vector<JobSpec> jobs;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    JobSpec spec;
    spec.sqls = FlightsLog();
    spec.options.search.time_budget_ms = budget_ms / 4;
    spec.options.search.seed = seed;
    jobs.push_back(std::move(spec));
  }
  std::vector<JobSpec> rerun = jobs;  // identical batch, should hit the cache

  Stopwatch watch;
  auto futures = service.SubmitBatch(std::move(jobs));
  size_t ok = 0;
  for (auto& f : futures) ok += f.get().ok() ? 1 : 0;
  int64_t cold_ms = watch.ElapsedMillis();

  watch.Restart();
  auto cached_futures = service.SubmitBatch(std::move(rerun));
  size_t cached_ok = 0;
  for (auto& f : cached_futures) cached_ok += f.get().ok() ? 1 : 0;
  int64_t warm_ms = watch.ElapsedMillis();

  std::printf("cold batch: %zu/8 ok in %lld ms (%.2f jobs/s)\n", ok,
              static_cast<long long>(cold_ms),
              8000.0 / static_cast<double>(cold_ms ? cold_ms : 1));
  std::printf("warm batch: %zu/8 ok in %lld ms, cache hits=%zu\n", cached_ok,
              static_cast<long long>(warm_ms), service.cache_hits());
  std::printf("{\"bench\":\"parallel_service\",\"jobs\":8,\"cold_ms\":%lld,"
              "\"warm_ms\":%lld,\"cache_hits\":%zu}\n",
              static_cast<long long>(cold_ms), static_cast<long long>(warm_ms),
              service.cache_hits());
}

}  // namespace

int main() {
  int64_t budget = bench::BudgetMs(2000);
  // A zero/garbage IFGEN_BUDGET_MS would mean "unlimited" to the searcher
  // (which, with no iteration cap, never returns); fall back instead.
  if (budget <= 0) budget = 2000;
  bench::PrintHeader("Parallel MCTS: threads vs. wall-clock and best cost");
  std::printf("budget per search: %lld ms (IFGEN_BUDGET_MS to change)\n\n",
              static_cast<long long>(budget));

  SweepWorkload({"flights", FlightsLog()}, budget);
  std::printf("\n");
  SweepWorkload({"sdss", SdssListing1()}, budget);

  BenchService(budget);

  std::printf("\nexpected shape: with a fixed wall-clock budget, more threads "
              "run more\niterations and reach equal-or-better cost sooner "
              "(ms_to_best); the shared\ntransposition table's hit count grows "
              "with tree count. On a single-core\nhost the parallel "
              "configurations mainly demonstrate correctness, not speedup.\n");
  return 0;
}
