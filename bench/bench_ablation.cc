// Ablations over the design choices DESIGN.md calls out:
//  - UCT exploration constant c (the paper calls it "tunable"),
//  - k (random widget assignments per state),
//  - the greedy-seed assignment (our refinement over pure random k),
//  - saturation/forward-biased rollouts vs the paper's uniform walks,
//  - expand-all-children vs single expansion,
// plus the PR-2 search/evaluation refinements (see docs/search.md and
// docs/cost-model.md):
//  - log-derived action priors + progressive widening vs uniform expansion
//    (iteration-capped, so "equal-or-better cost in fewer iterations" is
//    read straight off the rows),
//  - delta-cost evaluation vs forced full re-evaluation (bit-identical
//    costs; the rows carry the recompute/hit counters).
// JSON rows (one line each, `"bench":"ablation"`) are documented in
// bench/README.md.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "obs/metrics.h"
#include "search/mcts.h"
#include "sql/parser.h"
#include "util/timer.h"
#include "workload/flights.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

using namespace ifgen;  // NOLINT

namespace {

double RunOnce(const std::vector<Ast>& queries, GeneratorOptions opt) {
  auto r = GenerateInterfaceFromAsts(queries, opt);
  return r.ok() ? r->cost.total() : -1.0;
}

struct Workload {
  const char* name;
  std::vector<Ast> queries;
};

std::vector<Workload> AblationWorkloads() {
  LogSpec spec;
  spec.num_queries = 12;
  spec.vary_predicate_count = true;
  spec.optional_where = true;
  return {{"flights", *ParseQueries(FlightsLog())},
          {"sdss", *ParseQueries(SdssListing1())},
          {"synthetic", *ParseQueries(GenerateLog(spec))}};
}

/// One iteration-capped MCTS run with explicit prior/widening flags;
/// returns the best sampled cost and fills the evaluator counters.
SearchResult RunMcts(const Workload& w, const SearchOptions& sopts,
                     StateEvaluator* eval) {
  RuleEngine rules;
  MctsSearcher mcts(&rules, eval, sopts);
  DiffTree initial = *BuildInitialTree(w.queries);
  return *mcts.Run(initial);
}

void SweepPriors() {
  bench::PrintHeader(
      "Priors + progressive widening vs uniform expansion (iteration-capped; "
      "lower cost at equal iterations is better)");
  struct Config {
    const char* tag;
    bool use_priors;
    bool widening;
  };
  const Config configs[] = {{"priors+widening", true, true},
                            {"priors only", true, false},
                            {"widening only", false, true},
                            {"uniform (paper)", false, false}};
  const std::vector<size_t> iter_points =
      bench::SmokeMode() ? std::vector<size_t>{5, 10}
                         : std::vector<size_t>{60, 150, 300};
  for (const Workload& w : AblationWorkloads()) {
    std::printf("\n%s:\n", w.name);
    for (size_t iters : iter_points) {
      for (const Config& c : configs) {
        SearchOptions sopts;
        sopts.time_budget_ms = 0;  // iteration-capped: comparable work
        sopts.max_iterations = iters;
        sopts.seed = 3;
        sopts.priors.use_priors = c.use_priors;
        sopts.priors.progressive_widening = c.widening;
        EvalOptions eopts;
        eopts.screen = {100, 40};
        StateEvaluator eval(eopts, w.queries);
        Stopwatch watch;
        SearchResult r = RunMcts(w, sopts, &eval);
        int64_t ms = watch.ElapsedMillis();
        std::printf("  iters=%-4zu %-18s cost=%8.2f  expanded=%5zu  %5lld ms\n",
                    iters, c.tag, r.best_cost, r.stats.states_expanded,
                    static_cast<long long>(ms));
        std::printf("{\"bench\":\"ablation\",\"group\":\"priors\","
                    "\"workload\":\"%s\",\"use_priors\":%s,"
                    "\"progressive_widening\":%s,\"iterations\":%zu,"
                    "\"best_cost\":%.4f,\"states_expanded\":%zu,\"ms\":%lld}\n",
                    w.name, c.use_priors ? "true" : "false",
                    c.widening ? "true" : "false", iters, r.best_cost,
                    r.stats.states_expanded, static_cast<long long>(ms));
      }
    }
  }
}

void SweepDeltaCost() {
  bench::PrintHeader(
      "Delta-cost evaluation vs forced full re-evaluation (costs must be "
      "bit-identical; only the recompute counters and wall-clock differ)");
  for (const Workload& w : AblationWorkloads()) {
    double costs[2] = {0.0, 0.0};
    for (bool delta : {true, false}) {
      SearchOptions sopts;
      sopts.time_budget_ms = 0;
      sopts.max_iterations = bench::SmokeMode() ? 10 : 150;
      sopts.seed = 3;
      EvalOptions eopts;
      eopts.screen = {100, 40};
      eopts.delta_eval = delta;
      StateEvaluator eval(eopts, w.queries);
      Stopwatch watch;
      SearchResult r = RunMcts(w, sopts, &eval);
      int64_t ms = watch.ElapsedMillis();
      costs[delta ? 0 : 1] = r.best_cost;
      std::printf("  %-9s delta=%-5s cost=%8.2f  subtree recompute/hit="
                  "%6zu/%-6zu  plan recompute/hit=%5zu/%-5zu  %5lld ms\n",
                  w.name, delta ? "on" : "off", r.best_cost,
                  eval.subtree_recomputes(), eval.subtree_cache_hits(),
                  eval.plan_recomputes(), eval.plan_cache_hits(),
                  static_cast<long long>(ms));
      std::printf("{\"bench\":\"ablation\",\"group\":\"delta\","
                  "\"workload\":\"%s\",\"delta\":%s,\"best_cost\":%.4f,"
                  "\"subtree_recomputes\":%zu,\"subtree_hits\":%zu,"
                  "\"plan_recomputes\":%zu,\"plan_hits\":%zu,\"ms\":%lld}\n",
                  w.name, delta ? "true" : "false", r.best_cost,
                  eval.subtree_recomputes(), eval.subtree_cache_hits(),
                  eval.plan_recomputes(), eval.plan_cache_hits(),
                  static_cast<long long>(ms));
    }
    std::printf("  %-9s bit-identical: %s\n", w.name,
                costs[0] == costs[1] ? "yes" : "NO (BUG)");
  }
}

void SweepObsOverhead() {
  bench::PrintHeader(
      "Metrics-registry overhead: identical iteration-capped searches with "
      "the obs registry enabled vs disabled (guard: <= 2% overhead)");
  const size_t iters = bench::SmokeMode() ? 10 : 150;
  const int reps = bench::SmokeMode() ? 2 : 5;
  const std::vector<Workload> workloads = AblationWorkloads();

  // One timed pass: every ablation workload at a fixed iteration budget.
  auto run_pass = [&](bool metrics_on) {
    obs::SetMetricsEnabled(metrics_on);
    Stopwatch watch;
    for (const Workload& w : workloads) {
      SearchOptions sopts;
      sopts.time_budget_ms = 0;
      sopts.max_iterations = iters;
      sopts.seed = 3;
      EvalOptions eopts;
      eopts.screen = {100, 40};
      StateEvaluator eval(eopts, w.queries);
      (void)RunMcts(w, sopts, &eval);
    }
    return watch.ElapsedMillis();
  };

  // Warm up once (allocator + page-cache state), then interleave the arms
  // rep-by-rep and take best-of-N per arm: back-to-back pairs see the same
  // machine conditions, so clock drift cannot masquerade as instrumentation
  // cost the way sequential whole-arm runs would.
  (void)run_pass(true);
  int64_t enabled_ms = -1, disabled_ms = -1;
  for (int rep = 0; rep < reps; ++rep) {
    const int64_t on = run_pass(true);
    const int64_t off = run_pass(false);
    if (enabled_ms < 0 || on < enabled_ms) enabled_ms = on;
    if (disabled_ms < 0 || off < disabled_ms) disabled_ms = off;
  }
  obs::SetMetricsEnabled(true);  // leave the process in the default state

  const double overhead_pct =
      disabled_ms > 0
          ? 100.0 * static_cast<double>(enabled_ms - disabled_ms) /
                static_cast<double>(disabled_ms)
          : 0.0;
  std::printf("  enabled=%lld ms  disabled=%lld ms  overhead=%.2f%%  %s\n",
              static_cast<long long>(enabled_ms),
              static_cast<long long>(disabled_ms), overhead_pct,
              overhead_pct <= 2.0 ? "(within guard)" : "(EXCEEDS 2% GUARD)");
  std::printf("{\"bench\":\"ablation\",\"group\":\"obs_overhead\","
              "\"iterations\":%zu,\"reps\":%d,\"enabled_ms\":%lld,"
              "\"disabled_ms\":%lld,\"overhead_pct\":%.4f}\n",
              iters, reps, static_cast<long long>(enabled_ms),
              static_cast<long long>(disabled_ms), overhead_pct);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations on Listing 1 (lower cost is better)");
  const int64_t budget = bench::SmokeMode() ? 50 : bench::BudgetMs(2500);
  auto queries = *ParseQueries(SdssListing1());

  GeneratorOptions base;
  base.screen = {100, 40};
  base.search.time_budget_ms = budget;
  base.search.seed = 3;

  std::printf("\nUCT exploration constant c:\n");
  for (double c : {0.1, 0.25, 0.5, 1.0, 1.41421356}) {
    GeneratorOptions opt = base;
    opt.search.exploration_c = c;
    std::printf("  c=%-6.2f cost=%.2f\n", c, RunOnce(queries, opt));
  }

  std::printf("\nk random widget assignments per state:\n");
  for (size_t k : {1, 2, 4, 8, 16}) {
    GeneratorOptions opt = base;
    opt.k_assignments = k;
    std::printf("  k=%-4zu cost=%.2f\n", k, RunOnce(queries, opt));
  }

  std::printf("\nreward estimation (paper: k purely random assignments):\n");
  {
    GeneratorOptions opt = base;
    std::printf("  greedy seed ON  (ours)   cost=%.2f\n", RunOnce(queries, opt));
    // EvalOptions are derived inside; emulate OFF via a custom run.
    RuleEngine rules(opt.rules);
    EvalOptions eopts = opt.MakeEvalOptions();
    eopts.greedy_seed = false;
    StateEvaluator eval(eopts, queries);
    auto searcher = MakeSearcher(Algorithm::kMcts, &rules, &eval, opt.search);
    auto initial = BuildInitialTree(queries);
    auto r = searcher->Run(*initial);
    Rng rng(1);
    auto best = eval.FindBest(r->best_tree, &rng);
    std::printf("  greedy seed OFF (paper)  cost=%.2f\n",
                best.ok() ? best->cost.total() : -1.0);
  }

  std::printf("\nrollout policy (paper: uniformly random walks):\n");
  for (auto [saturate, bias, tag] :
       {std::tuple{0.35, 0.8, "saturation+bias (ours)"},
        std::tuple{0.0, 0.8, "forward bias only"},
        std::tuple{0.0, 0.5, "uniform (paper)"}}) {
    GeneratorOptions opt = base;
    opt.search.rollout_saturate_prob = saturate;
    opt.search.rollout_forward_bias = bias;
    std::printf("  %-24s cost=%.2f\n", tag, RunOnce(queries, opt));
  }

  std::printf("\nexpansion policy (paper: expand all immediate neighbors):\n");
  for (bool all : {true, false}) {
    GeneratorOptions opt = base;
    opt.search.expand_all_children = all;
    std::printf("  expand_all=%-5s cost=%.2f\n", all ? "true" : "false",
                RunOnce(queries, opt));
  }

  SweepPriors();
  SweepDeltaCost();
  SweepObsOverhead();

  return 0;
}
