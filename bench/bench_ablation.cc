// Ablations over the design choices DESIGN.md calls out:
//  - UCT exploration constant c (the paper calls it "tunable"),
//  - k (random widget assignments per state),
//  - the greedy-seed assignment (our refinement over pure random k),
//  - saturation/forward-biased rollouts vs the paper's uniform walks,
//  - expand-all-children vs single expansion.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "sql/parser.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

namespace {

double RunOnce(const std::vector<Ast>& queries, GeneratorOptions opt) {
  auto r = GenerateInterfaceFromAsts(queries, opt);
  return r.ok() ? r->cost.total() : -1.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations on Listing 1 (lower cost is better)");
  const int64_t budget = bench::BudgetMs(2500);
  auto queries = *ParseQueries(SdssListing1());

  GeneratorOptions base;
  base.screen = {100, 40};
  base.search.time_budget_ms = budget;
  base.search.seed = 3;

  std::printf("\nUCT exploration constant c:\n");
  for (double c : {0.1, 0.25, 0.5, 1.0, 1.41421356}) {
    GeneratorOptions opt = base;
    opt.search.exploration_c = c;
    std::printf("  c=%-6.2f cost=%.2f\n", c, RunOnce(queries, opt));
  }

  std::printf("\nk random widget assignments per state:\n");
  for (size_t k : {1, 2, 4, 8, 16}) {
    GeneratorOptions opt = base;
    opt.k_assignments = k;
    std::printf("  k=%-4zu cost=%.2f\n", k, RunOnce(queries, opt));
  }

  std::printf("\nreward estimation (paper: k purely random assignments):\n");
  {
    GeneratorOptions opt = base;
    std::printf("  greedy seed ON  (ours)   cost=%.2f\n", RunOnce(queries, opt));
    // EvalOptions are derived inside; emulate OFF via a custom run.
    RuleEngine rules(opt.rules);
    EvalOptions eopts = opt.MakeEvalOptions();
    eopts.greedy_seed = false;
    StateEvaluator eval(eopts, queries);
    auto searcher = MakeSearcher(Algorithm::kMcts, &rules, &eval, opt.search);
    auto initial = BuildInitialTree(queries);
    auto r = searcher->Run(*initial);
    Rng rng(1);
    auto best = eval.FindBest(r->best_tree, &rng);
    std::printf("  greedy seed OFF (paper)  cost=%.2f\n",
                best.ok() ? best->cost.total() : -1.0);
  }

  std::printf("\nrollout policy (paper: uniformly random walks):\n");
  for (auto [saturate, bias, tag] :
       {std::tuple{0.35, 0.8, "saturation+bias (ours)"},
        std::tuple{0.0, 0.8, "forward bias only"},
        std::tuple{0.0, 0.5, "uniform (paper)"}}) {
    GeneratorOptions opt = base;
    opt.search.rollout_saturate_prob = saturate;
    opt.search.rollout_forward_bias = bias;
    std::printf("  %-24s cost=%.2f\n", tag, RunOnce(queries, opt));
  }

  std::printf("\nexpansion policy (paper: expand all immediate neighbors):\n");
  for (bool all : {true, false}) {
    GeneratorOptions opt = base;
    opt.search.expand_all_children = all;
    std::printf("  expand_all=%-5s cost=%.2f\n", all ? "true" : "false",
                RunOnce(queries, opt));
  }

  return 0;
}
