// Reproduces Figure 6: interfaces generated from the SDSS Listing 1 log —
// (a) all queries on a wide screen, (b) all queries on a narrow screen,
// (c) queries 6-8 only, (d) a low-reward interface for contrast — plus the
// bottom-up baseline for reference.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

int main() {
  bench::PrintHeader("Figure 6 reproduction: SDSS Listing 1 interfaces");
  const int64_t budget = bench::BudgetMs(4000);
  const Screen wide{100, 40};
  const Screen narrow{30, 12};

  GeneratorOptions opt;
  opt.search.time_budget_ms = budget;
  opt.search.seed = 3;

  // (a) all queries, wide screen.
  opt.screen = wide;
  auto a = GenerateInterface(SdssListing1(), opt);
  if (!a.ok()) return 1;
  bench::PrintInterfaceSummary("Fig6(a) all queries, wide", *a);
  bench::PrintRendered(*a, wide);

  // (b) all queries, narrow screen.
  opt.screen = narrow;
  auto b = GenerateInterface(SdssListing1(), opt);
  if (!b.ok()) return 1;
  bench::PrintInterfaceSummary("Fig6(b) all queries, narrow", *b);
  bench::PrintRendered(*b, narrow);

  // (c) queries 6-8, wide screen.
  opt.screen = wide;
  auto c = GenerateInterface(SdssQueries6To8(), opt);
  if (!c.ok()) return 1;
  bench::PrintInterfaceSummary("Fig6(c) queries 6-8", *c);
  bench::PrintRendered(*c, wide);

  // (d) low-reward interface: a barely-searched random walk.
  GeneratorOptions bad = opt;
  bad.algorithm = Algorithm::kRandom;
  bad.search.time_budget_ms = 0;
  bad.search.max_iterations = 1;
  bad.search.rollout_saturate_prob = 0.0;
  bad.search.rollout_eval_prob = 0.0;
  auto d = GenerateInterface(SdssListing1(), bad);
  if (d.ok()) {
    bench::PrintInterfaceSummary("Fig6(d) low-reward (random)", *d);
    bench::PrintRendered(*d, wide);
  }

  // Zhang'17 bottom-up baseline on the same log (reference row).
  GeneratorOptions bu = opt;
  bu.algorithm = Algorithm::kBottomUp;
  auto e = GenerateInterface(SdssListing1(), bu);
  if (e.ok()) {
    bench::PrintInterfaceSummary("bottom-up baseline", *e);
  }

  std::printf("\nexpected shape (paper): (a) factored widgets incl. radio sets; "
              "(b) compact widgets under the narrow screen; (c) only top/table "
              "choices remain; (d) clearly costlier than (a).\n");
  std::printf("search stats (a): iterations=%zu expanded=%zu rollouts=%zu "
              "mean_fanout=%.1f max_fanout=%zu\n",
              a->stats.iterations, a->stats.states_expanded, a->stats.rollouts,
              a->stats.MeanFanout(), a->stats.fanout_max);
  return 0;
}
