// HTTP front-end latency: request overhead and session-step latency over
// real sockets against the in-process embedded server.
//
// Starts an ApiService + ApiHttpFrontend on an ephemeral port, then times
// four endpoint families end-to-end (connect + request + parse, one
// connection per request, mirroring the server's Connection: close model):
//   - healthz      — transport floor (routing + serialization only)
//   - stats        — counter aggregation + DTO encoding
//   - events       — POST widget event -> StepResponse with diff batch (the
//                    interactive hot path; compare against bench_interactive's
//                    in-process per-step numbers for the wire overhead)
//   - feed         — change-feed drain (empty and non-empty polls mixed)
//
// JSON rows (one line each, `"bench":"http"`) are documented in
// bench/README.md and validated by scripts/check_bench_json.py.
// IFGEN_BENCH_SMOKE=1 shrinks request counts for CI.
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "api/api_service.h"
#include "bench/bench_util.h"
#include "http/api_http.h"
#include "http/http_client.h"
#include "util/json.h"
#include "util/timer.h"

using namespace ifgen;  // NOLINT

namespace {

constexpr const char* kHost = "127.0.0.1";

void CollectChoices(const JsonValue& node,
                    std::vector<std::tuple<int64_t, int64_t, std::string>>* out) {
  const JsonValue* choice = node.Find("choice");
  const JsonValue* widget = node.Find("widget");
  if (choice != nullptr && widget != nullptr) {
    const JsonValue* options = node.Find("options");
    out->emplace_back(choice->AsInt(),
                      options != nullptr ? static_cast<int64_t>(options->size()) : 0,
                      widget->AsString());
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->items()) CollectChoices(c, out);
  }
}

struct EndpointStat {
  size_t requests = 0;
  size_t errors = 0;
  double total_us = 0.0;
  double us_per_request() const {
    return requests == 0 ? 0.0 : total_us / static_cast<double>(requests);
  }
};

void EmitRow(const std::string& workload, const std::string& endpoint,
             const EndpointStat& s) {
  std::printf(
      "{\"bench\":\"http\",\"workload\":\"%s\",\"endpoint\":\"%s\","
      "\"requests\":%zu,\"errors\":%zu,\"us_per_request\":%s}\n",
      workload.c_str(), endpoint.c_str(), s.requests, s.errors,
      JsonDouble(s.us_per_request()).c_str());
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kRequests = smoke ? 40 : 400;
  const size_t kSteps = smoke ? 60 : 600;

  bench::PrintHeader("HTTP front-end: request + session-step latency");

  api::ApiService::Options opts;
  opts.workload_rows = smoke ? 300 : 2000;
  opts.service.num_threads = 2;
  auto svc = api::ApiService::Create(opts);
  if (!svc.ok()) {
    std::fprintf(stderr, "service: %s\n", svc.status().ToString().c_str());
    return 1;
  }
  http::ApiHttpFrontend frontend(svc->get());
  http::ApiHttpFrontend::Options fopts;
  fopts.http.num_threads = 4;
  if (Status st = frontend.Start(fopts); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  const int port = frontend.port();
  std::printf("embedded server on %s:%d\n", kHost, port);

  const std::string workload = "flights";

  // Generation job (iteration-capped; the search itself is bench_ablation's
  // subject — here it only has to finish).
  Stopwatch gen_watch;
  auto accepted = http::Post(
      kHost, port, "/v1/generate",
      R"({"workload":"flights","options":{"time_budget_ms":0,"max_iterations":20,"seed":5,"screen_width":90,"screen_height":32}})");
  if (!accepted.ok() || accepted->status != 202) {
    std::fprintf(stderr, "generate failed (%d)\n",
                 accepted.ok() ? accepted->status : -1);
    return 1;
  }
  auto job = ParseJson(accepted->body);
  const std::string job_id = job->Find("job_id")->AsString();
  auto done = http::Get(kHost, port, "/v1/jobs/" + job_id + "?wait_ms=60000");
  if (!done.ok() || done->status != 200) {
    std::fprintf(stderr, "job wait failed\n");
    return 1;
  }
  std::printf("generate -> done over HTTP in %.1f ms\n",
              static_cast<double>(gen_watch.ElapsedMillis()));

  // Session.
  auto session_resp = http::Post(kHost, port, "/v1/sessions",
                                 "{\"job_id\":\"" + job_id + "\"}");
  if (!session_resp.ok() || session_resp->status != 200) {
    std::fprintf(stderr, "session open failed\n");
    return 1;
  }
  auto session = ParseJson(session_resp->body);
  const std::string sid = session->Find("session_id")->AsString();
  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(*session->Find("widgets"), &choices);
  if (choices.empty()) {
    std::fprintf(stderr, "no interactive widgets\n");
    return 1;
  }

  // --- endpoint: healthz / stats ---------------------------------------
  for (const char* endpoint : {"healthz", "stats"}) {
    EndpointStat stat;
    for (size_t i = 0; i < kRequests; ++i) {
      Stopwatch w;
      auto resp = http::Get(kHost, port, std::string("/v1/") + endpoint);
      stat.total_us += static_cast<double>(w.ElapsedMicros());
      ++stat.requests;
      if (!resp.ok() || resp->status != 200) ++stat.errors;
    }
    std::printf("%-8s %7.1f us/request (%zu requests, %zu errors)\n", endpoint,
                stat.us_per_request(), stat.requests, stat.errors);
    EmitRow(workload, endpoint, stat);
  }

  // --- endpoint: events (the interactive hot path) ----------------------
  {
    EndpointStat stat;
    size_t idx = 0;
    for (size_t i = 0; i < kSteps; ++i) {
      const auto& [choice_id, option_count, kind] = choices[idx];
      idx = (idx + 1) % choices.size();
      std::string body;
      if (kind == "Checkbox" || kind == "Toggle") {
        body = "{\"kind\":\"set_opt\",\"choice_id\":" + std::to_string(choice_id) +
               ",\"present\":" + (i % 2 == 0 ? "false" : "true") + "}";
      } else if (option_count > 0) {
        body = "{\"kind\":\"set_any\",\"choice_id\":" + std::to_string(choice_id) +
               ",\"option_index\":" +
               std::to_string(static_cast<int64_t>(i) % option_count) + "}";
      } else {
        continue;
      }
      Stopwatch w;
      auto resp =
          http::Post(kHost, port, "/v1/sessions/" + sid + "/events", body);
      stat.total_us += static_cast<double>(w.ElapsedMicros());
      ++stat.requests;
      // Rejected states (hidden alternatives) are fine; transport errors
      // are not.
      if (!resp.ok() || (resp->status != 200 && resp->status != 400)) {
        ++stat.errors;
      }
    }
    std::printf("events   %7.1f us/request (%zu requests, %zu errors)\n",
                stat.us_per_request(), stat.requests, stat.errors);
    EmitRow(workload, "events", stat);
  }

  // --- endpoint: feed ----------------------------------------------------
  {
    EndpointStat stat;
    size_t idx = 0;
    for (size_t i = 0; i < kRequests; ++i) {
      // Interleave an event every few polls so the feed alternates between
      // empty drains and row diffs.
      if (i % 4 == 0) {
        const auto& [choice_id, option_count, kind] = choices[idx];
        idx = (idx + 1) % choices.size();
        if (option_count > 0 && kind != "Checkbox" && kind != "Toggle") {
          (void)http::Post(
              kHost, port, "/v1/sessions/" + sid + "/events",
              "{\"kind\":\"set_any\",\"choice_id\":" + std::to_string(choice_id) +
                  ",\"option_index\":" +
                  std::to_string(static_cast<int64_t>(i) % option_count) + "}");
        }
      }
      Stopwatch w;
      auto resp = http::Get(kHost, port, "/v1/sessions/" + sid + "/feed");
      stat.total_us += static_cast<double>(w.ElapsedMicros());
      ++stat.requests;
      if (!resp.ok() || resp->status != 200) ++stat.errors;
    }
    std::printf("feed     %7.1f us/request (%zu requests, %zu errors)\n",
                stat.us_per_request(), stat.requests, stat.errors);
    EmitRow(workload, "feed", stat);
  }

  (void)http::Delete(kHost, port, "/v1/sessions/" + sid);
  frontend.Stop();
  std::printf("clean shutdown\n");
  return 0;
}
