// Cluster cache peering: a same-schema job storm through a 3-worker
// cluster, with and without the peering tier (docs/cluster.md).
//
// The storm submits N jobs that share workload + seed but differ in
// iteration budget: distinct result-cache keys (budgets are part of the
// job fingerprint) over ONE shared transposition store (budgets are
// deliberately excluded from the TT store key — they change which states
// a search visits, not what they cost). With peering on, workers gossip
// hot TT entries through the router, so later budgets warm-start from
// sibling discoveries; a repeat of the storm then measures the result
// cache (local hits plus `cache.probe` redirects).
//
// Emits one `"bench":"cluster_cache"` JSON row per arm (peering on/off),
// documented in bench/README.md and validated by
// scripts/check_bench_json.py. IFGEN_BENCH_SMOKE=1 shrinks the storm.
//
// This binary doubles as the worker binary: main() checks
// IsWorkerInvocation and re-execs itself per worker (fork+exec).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/dto.h"
#include "bench/bench_util.h"
#include "cluster/cluster_router.h"
#include "cluster/process.h"
#include "util/json.h"
#include "util/timer.h"

using namespace ifgen;  // NOLINT

namespace {

constexpr int kWorkers = 3;

api::GenerateRequest StormRequest(int64_t max_iterations, bool peering) {
  api::GenerateRequest req;
  req.workload = "flights";
  req.options.time_budget_ms = 0;  // iteration-capped: deterministic
  req.options.max_iterations = max_iterations;
  req.options.seed = 5;
  req.options.screen_width = 90;
  req.options.screen_height = 32;
  req.options.cache_peering = peering;
  return req;
}

struct ArmResult {
  size_t jobs = 0;
  double cold_ms = 0.0;
  double repeat_ms = 0.0;
  int64_t repeat_cache_hits = 0;
  int64_t cache_probes = 0;
  int64_t cache_probe_hits = 0;
  int64_t tt_peer_ingested = 0;
  int64_t tt_peer_hits = 0;
  int64_t tt_published = 0;
  int64_t result_peer_hits = 0;
  bool ok = false;
};

/// Runs the storm (cold pass + repeat pass) against a fresh 3-worker
/// cluster with peering on or off; tears the cluster down afterwards.
ArmResult RunArm(const std::string& self_exe,
                 const std::vector<int64_t>& budgets, bool peering) {
  ArmResult out;
  out.jobs = budgets.size();

  std::vector<cluster::SpawnedWorker> spawned;
  cluster::ClusterRouter router;
  cluster::ClusterRouter::Options ropts;
  for (int i = 0; i < kWorkers; ++i) {
    auto w = cluster::SpawnWorkerProcess(
        self_exe, {"--rows", "300", "--threads", "1", "--max-pending", "64"});
    if (!w.ok()) {
      std::fprintf(stderr, "spawn: %s\n", w.status().ToString().c_str());
      return out;
    }
    spawned.push_back(*w);
    ropts.workers.push_back({"127.0.0.1", w->port});
  }
  ropts.health_interval_ms = 100;  // gossip rides the health cadence
  ropts.reconnect_backoff_ms = 50;
  ropts.cache_peering = peering;
  auto shutdown = [&] {
    router.Stop();
    for (const cluster::SpawnedWorker& w : spawned) {
      (void)cluster::TerminateWorker(w.pid, /*grace_ms=*/5000);
    }
  };
  if (Status st = router.Start(std::move(ropts)); !st.ok()) {
    std::fprintf(stderr, "router: %s\n", st.ToString().c_str());
    shutdown();
    return out;
  }

  // Pass 1 (cold): sequential so the health loop's gossip rounds run
  // between jobs — later budgets warm-start from earlier exports.
  auto run_pass = [&](double* total_ms, int64_t* cache_hits) -> bool {
    Stopwatch watch;
    for (const int64_t budget : budgets) {
      auto acc = router.SubmitGenerate(StormRequest(budget, peering));
      if (!acc.ok()) {
        std::fprintf(stderr, "submit: %s\n", acc.status().ToString().c_str());
        return false;
      }
      auto done = router.GetJob(acc->job_id, /*wait_ms=*/60000);
      if (!done.ok() || done->state != "done") {
        std::fprintf(stderr, "job %s did not finish\n", acc->job_id.c_str());
        return false;
      }
      if (cache_hits != nullptr && done->cache_hit) ++(*cache_hits);
    }
    *total_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
    return true;
  };
  if (!run_pass(&out.cold_ms, nullptr)) {
    shutdown();
    return out;
  }

  // Let a few gossip rounds land, then repeat the identical storm: every
  // job answers from a result cache (the owner's, or a sibling's via
  // `cache.probe` when placement shifted).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  if (!run_pass(&out.repeat_ms, &out.repeat_cache_hits)) {
    shutdown();
    return out;
  }

  // One more health tick so the per-worker ping counters are fresh.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto stats = router.Stats();
  if (stats.ok()) {
    for (const api::WorkerStatsDto& w : stats->cluster_workers) {
      out.cache_probes += w.cache_probes;
      out.cache_probe_hits += w.cache_probe_hits;
      out.tt_peer_ingested += w.tt_peer_ingested;
      out.tt_peer_hits += w.tt_peer_hits;
      out.tt_published += w.tt_published;
      out.result_peer_hits += w.result_peer_hits;
    }
  }
  out.ok = true;
  shutdown();
  return out;
}

void EmitRow(const ArmResult& r, bool peering) {
  std::printf(
      "{\"bench\":\"cluster_cache\",\"workload\":\"flights\","
      "\"peering\":%s,\"workers\":%d,\"jobs\":%zu,"
      "\"cold_ms\":%s,\"repeat_ms\":%s,\"repeat_cache_hits\":%lld,"
      "\"cache_probes\":%lld,\"cache_probe_hits\":%lld,"
      "\"tt_peer_ingested\":%lld,\"tt_peer_hits\":%lld,"
      "\"tt_published\":%lld,\"result_peer_hits\":%lld}\n",
      peering ? "true" : "false", kWorkers, r.jobs,
      JsonDouble(r.cold_ms).c_str(), JsonDouble(r.repeat_ms).c_str(),
      static_cast<long long>(r.repeat_cache_hits),
      static_cast<long long>(r.cache_probes),
      static_cast<long long>(r.cache_probe_hits),
      static_cast<long long>(r.tt_peer_ingested),
      static_cast<long long>(r.tt_peer_hits),
      static_cast<long long>(r.tt_published),
      static_cast<long long>(r.result_peer_hits));
}

}  // namespace

int main(int argc, char** argv) {
  if (cluster::IsWorkerInvocation(argc, argv)) {
    return cluster::RunWorkerMain(argc, argv);
  }
  const bool smoke = bench::SmokeMode();

  bench::PrintHeader("Cluster cache peering: same-schema job storm");

  auto self = cluster::SelfExePath();
  if (!self.ok()) {
    std::fprintf(stderr, "self exe: %s\n", self.status().ToString().c_str());
    return 1;
  }

  // Same workload + seed, distinct budgets: one shared TT store, N distinct
  // result-cache keys.
  std::vector<int64_t> budgets;
  const size_t jobs = smoke ? 4 : 10;
  for (size_t i = 0; i < jobs; ++i) {
    budgets.push_back(static_cast<int64_t>(smoke ? 12 + 8 * i : 20 + 12 * i));
  }

  int rc = 0;
  for (const bool peering : {true, false}) {
    ArmResult r = RunArm(*self, budgets, peering);
    if (!r.ok) {
      rc = 1;
      continue;
    }
    std::printf(
        "peering=%-5s cold %8.1f ms, repeat %8.1f ms (%lld/%zu cached), "
        "probes %lld (%lld hits), tt ingested %lld / hits %lld / published %lld\n",
        peering ? "on" : "off", r.cold_ms, r.repeat_ms,
        static_cast<long long>(r.repeat_cache_hits), r.jobs,
        static_cast<long long>(r.cache_probes),
        static_cast<long long>(r.cache_probe_hits),
        static_cast<long long>(r.tt_peer_ingested),
        static_cast<long long>(r.tt_peer_hits),
        static_cast<long long>(r.tt_published));
    EmitRow(r, peering);
  }
  if (rc == 0) std::printf("clean shutdown\n");
  return rc;
}
